package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/wire"
)

// meshNode is one live jmsd-shaped member: broker, wire server, mesh
// forwarder.
type meshNode struct {
	b    *broker.Broker
	srv  *wire.Server
	mesh *WireMesh
	addr string
}

// startWireMesh boots n wire servers joined as one mesh of the given
// kind. Topics are configured on every broker.
func startWireMesh(t *testing.T, n int, kind TopologyKind, topics []string) []*meshNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*meshNode, n)
	for i := range nodes {
		b := broker.New(broker.Options{})
		for _, topic := range topics {
			if err := b.ConfigureTopic(topic); err != nil {
				t.Fatal(err)
			}
		}
		mesh, err := NewWireMesh(WireMeshConfig{
			Kind:   kind,
			Self:   i,
			Addrs:  addrs,
			Topics: topics,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.ServeWith(b, lns[i], wire.ServeOptions{Forwarder: mesh})
		nodes[i] = &meshNode{b: b, srv: srv, mesh: mesh, addr: addrs[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.mesh.Close()
			_ = nd.srv.Close()
			_ = nd.b.Close()
		}
	})
	return nodes
}

func recvOne(t *testing.T, sub *broker.Subscriber) *jms.Message {
	t.Helper()
	select {
	case m, ok := <-sub.Chan():
		if !ok {
			t.Fatal("subscription closed")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for delivery")
	}
	return nil
}

func expectNone(t *testing.T, sub *broker.Subscriber) {
	t.Helper()
	select {
	case m := <-sub.Chan():
		t.Fatalf("unexpected delivery on topic %q", m.Header.Topic)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestWireMeshSSRFlood floods one publish to every member: a subscriber
// homed on each broker must see it exactly once, and the forward counters
// must agree end to end.
func TestWireMeshSSRFlood(t *testing.T) {
	nodes := startWireMesh(t, 3, TopologySSR, []string{"t"})
	subs := make([]*broker.Subscriber, len(nodes))
	for i, nd := range nodes {
		sub, err := nd.b.Subscribe("t", filter.All{})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}

	c, err := client.Dial(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := jms.NewMessage("t")
	m.SetBody([]byte("flooded"))
	if err := c.Publish(context.Background(), m); err != nil {
		t.Fatal(err)
	}

	for i, sub := range subs {
		got := recvOne(t, sub)
		if string(got.Body) != "flooded" {
			t.Fatalf("member %d body = %q", i, got.Body)
		}
		expectNone(t, sub)
	}
	if got := nodes[0].mesh.Stats().ForwardedOut; got != 2 {
		t.Fatalf("ForwardedOut = %d, want 2", got)
	}
	for i := 1; i < 3; i++ {
		if got := nodes[i].srv.ForwardsIn(); got != 1 {
			t.Fatalf("member %d ForwardsIn = %d, want 1", i, got)
		}
	}
}

// TestWireMeshHashRouting publishes every topic at the same entry member;
// each message must surface exactly on the topic owner's broker —
// wherever the deterministic router says — and nowhere else.
func TestWireMeshHashRouting(t *testing.T) {
	topics := []string{"alpha", "beta", "gamma", "delta"}
	nodes := startWireMesh(t, 3, TopologyHash, topics)
	router, err := NewHashRouter(3, topics)
	if err != nil {
		t.Fatal(err)
	}

	subs := make(map[string][]*broker.Subscriber) // topic -> per-member subs
	for _, topic := range topics {
		for _, nd := range nodes {
			sub, err := nd.b.Subscribe(topic, filter.All{})
			if err != nil {
				t.Fatal(err)
			}
			subs[topic] = append(subs[topic], sub)
		}
	}

	c, err := client.Dial(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, topic := range topics {
		m := jms.NewMessage(topic)
		m.SetBody([]byte(topic))
		if err := c.Publish(context.Background(), m); err != nil {
			t.Fatal(err)
		}
	}

	for _, topic := range topics {
		owner := router.Owner(topic)
		for i, sub := range subs[topic] {
			if i == owner {
				if got := recvOne(t, sub); string(got.Body) != topic {
					t.Fatalf("owner %d of %q got body %q", owner, topic, got.Body)
				}
			}
		}
		for i, sub := range subs[topic] {
			if i != owner {
				expectNone(t, sub)
			}
		}
	}

	// A mixed-owner batch splits into per-owner sub-batches.
	var batch []*jms.Message
	for _, topic := range topics {
		m := jms.NewMessage(topic)
		m.SetBody([]byte("batch-" + topic))
		batch = append(batch, m)
	}
	if err := c.PublishBatch(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	for _, topic := range topics {
		owner := router.Owner(topic)
		if got := recvOne(t, subs[topic][owner]); string(got.Body) != "batch-"+topic {
			t.Fatalf("batch to %q: owner got %q", topic, got.Body)
		}
	}
}

// TestWireMeshPSRNoForwarding asserts PSR never dials a peer: the
// addresses are unroutable, so any forwarding attempt would error.
func TestWireMeshPSRNoForwarding(t *testing.T) {
	// The self slot's address is never dialed and may be empty.
	mesh, err := NewWireMesh(WireMeshConfig{
		Kind:  TopologyPSR,
		Self:  0,
		Addrs: []string{"", "203.0.113.1:1", "203.0.113.2:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	m := jms.NewMessage("t")
	local, err := mesh.ForwardPublish(m, wire.EncodeMessage(m))
	if err != nil || !local {
		t.Fatalf("PSR ForwardPublish = (%v, %v), want (true, nil)", local, err)
	}
	local, err = mesh.ForwardBatch([]*jms.Message{m}, wire.EncodeBatch([]*jms.Message{m}))
	if err != nil || !local {
		t.Fatalf("PSR ForwardBatch = (%v, %v), want (true, nil)", local, err)
	}
	if got := mesh.Stats().ForwardedOut; got != 0 {
		t.Fatalf("ForwardedOut = %d, want 0", got)
	}
}

// TestWireMeshReconnect kills a peer server mid-stream: the in-flight
// publish must be rejected (not silently dropped), and once the peer is
// back on the same address the next publish must go through on a fresh
// connection, counted as a reconnect.
func TestWireMeshReconnect(t *testing.T) {
	nodes := startWireMesh(t, 2, TopologySSR, []string{"t"})

	c, err := client.Dial(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := jms.NewMessage("t")
	if err := c.Publish(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if got := nodes[1].b.Stats().Received; got != 1 {
		t.Fatalf("peer received %d, want 1", got)
	}

	// Kill the peer server; keep its address.
	addr := nodes[1].addr
	_ = nodes[1].srv.Close()
	_ = nodes[1].b.Close()

	if err := c.Publish(context.Background(), jms.NewMessage("t")); err == nil {
		t.Fatal("want publish rejection while the peer is down")
	}

	// Revive the peer on the same address.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	b2 := broker.New(broker.Options{})
	if err := b2.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	srv2 := wire.Serve(b2, ln)
	t.Cleanup(func() {
		_ = srv2.Close()
		_ = b2.Close()
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Publish(context.Background(), jms.NewMessage("t")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("publish never succeeded after peer revival")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := b2.Stats().Received; got == 0 {
		t.Fatal("revived peer received nothing")
	}
	if got := nodes[0].mesh.Stats().Reconnects; got == 0 {
		t.Fatal("reconnect not counted")
	}
	if got := nodes[0].mesh.Stats().ForwardErrors; got == 0 {
		t.Fatal("forward failure not counted")
	}
}

// TestHashRouterAgreement pins the property client-side routing relies
// on: every member size computes the identical owner for ring topics and
// rendezvous-fallback topics alike.
func TestHashRouterAgreement(t *testing.T) {
	topics := []string{"a", "b", "c", "d", "e"}
	r1, err := NewHashRouter(3, topics)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewHashRouter(3, topics)
	if err != nil {
		t.Fatal(err)
	}
	for _, topic := range append(topics, "unknown-0", "unknown-1") {
		o1, o2 := r1.Owner(topic), r2.Owner(topic)
		if o1 != o2 {
			t.Fatalf("routers disagree on %q: %d vs %d", topic, o1, o2)
		}
		if o1 < 0 || o1 >= 3 {
			t.Fatalf("owner %d out of range for %q", o1, topic)
		}
	}
	// Ring topics must match the in-process Ring assignment (same member
	// naming), so Topology and WireMesh route identically.
	ring, err := NewRing([]string{"m0", "m1", "m2"}, topics)
	if err != nil {
		t.Fatal(err)
	}
	for _, topic := range topics {
		owner, _ := ring.Owner(topic)
		if got := fmt.Sprintf("m%d", r1.Owner(topic)); got != owner {
			t.Fatalf("router owner %s != ring owner %s for %q", got, owner, topic)
		}
	}
}
