package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/jms"
)

// topoTestCase describes one metamorphic subscriber: its topic and filter
// constructor (nil for match-all).
type topoTestSub struct {
	topic string
	mkF   func() filter.Filter
}

func corrFilter(t *testing.T, expr string) func() filter.Filter {
	t.Helper()
	return func() filter.Filter {
		f, err := filter.NewCorrelationID(expr)
		if err != nil {
			t.Fatalf("correlation filter %q: %v", expr, err)
		}
		return f
	}
}

func propFilter(t *testing.T, src string) func() filter.Filter {
	t.Helper()
	return func() filter.Filter {
		f, err := filter.NewProperty(src)
		if err != nil {
			t.Fatalf("property filter %q: %v", src, err)
		}
		return f
	}
}

// makeTopoMessages builds a deterministic message stream across topics,
// correlation IDs and properties. Each call builds fresh instances, so the
// same stream can be replayed against the baseline broker.
func makeTopoMessages(t *testing.T, topics []string, n int, seed int64) []*jms.Message {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]*jms.Message, n)
	for i := range msgs {
		m := jms.NewMessage(topics[rng.Intn(len(topics))])
		if err := m.SetCorrelationID(fmt.Sprintf("#%d", rng.Intn(5))); err != nil {
			t.Fatal(err)
		}
		if err := m.SetInt64Property("shard", int64(rng.Intn(4))); err != nil {
			t.Fatal(err)
		}
		m.SetBody([]byte(fmt.Sprintf("msg-%d", i)))
		msgs[i] = m
	}
	return msgs
}

// expectedCounts evaluates the filters directly: how many stream messages
// each subscriber must receive.
func expectedCounts(subs []topoTestSub, filters []filter.Filter, msgs []*jms.Message) []int {
	out := make([]int, len(subs))
	for i, s := range subs {
		for _, m := range msgs {
			if m.Header.Topic != s.topic {
				continue
			}
			if filters[i] == nil || filters[i].Matches(m) {
				out[i]++
			}
		}
	}
	return out
}

// collectExactly drains want messages from ch into a body multiset, then
// verifies no extra message trails within the grace window.
func collectExactly(t *testing.T, name string, ch <-chan *jms.Message, want int) map[string]int {
	t.Helper()
	got := make(map[string]int, want)
	deadline := time.After(20 * time.Second)
	for n := 0; n < want; n++ {
		select {
		case m, ok := <-ch:
			if !ok {
				t.Fatalf("%s: channel closed after %d of %d", name, n, want)
			}
			got[string(m.Body)]++
		case <-deadline:
			t.Fatalf("%s: timed out at %d of %d deliveries", name, n, want)
		}
	}
	select {
	case m := <-ch:
		t.Fatalf("%s: extra delivery %q beyond %d", name, m.Body, want)
	case <-time.After(50 * time.Millisecond):
	}
	return got
}

// TestTopologyMetamorphic is the delivery-equivalence wall: for every
// topology and both engines, the per-subscriber delivery multiset equals
// the single-broker baseline on the identical message stream.
func TestTopologyMetamorphic(t *testing.T) {
	topics := []string{"alpha", "beta", "gamma"}
	subs := []topoTestSub{
		{topic: "alpha", mkF: nil},
		{topic: "alpha", mkF: corrFilter(t, "#1")},
		{topic: "beta", mkF: corrFilter(t, "[1;3]")},
		{topic: "beta", mkF: propFilter(t, "shard = 2")},
		{topic: "gamma", mkF: propFilter(t, "shard >= 1 AND shard <= 2")},
		{topic: "gamma", mkF: nil},
	}
	const messages = 400

	for _, engine := range []broker.Engine{broker.EngineFaithful, broker.EngineFast} {
		for _, kind := range []TopologyKind{TopologyPSR, TopologySSR, TopologyHash} {
			kind, engine := kind, engine
			t.Run(fmt.Sprintf("%s-%v", kind, engine), func(t *testing.T) {
				t.Parallel()
				mkFilters := func() []filter.Filter {
					fs := make([]filter.Filter, len(subs))
					for i, s := range subs {
						if s.mkF != nil {
							fs[i] = s.mkF()
						}
					}
					return fs
				}

				// Baseline: one broker, same filters, same stream.
				base := broker.New(broker.Options{Engine: engine, SubscriberBuffer: 2 * messages})
				defer func() { _ = base.Close() }()
				for _, tp := range topics {
					if err := base.ConfigureTopic(tp); err != nil {
						t.Fatal(err)
					}
				}
				baseFilters := mkFilters()
				baseSubs := make([]*broker.Subscriber, len(subs))
				for i, s := range subs {
					bs, err := base.Subscribe(s.topic, baseFilters[i])
					if err != nil {
						t.Fatal(err)
					}
					baseSubs[i] = bs
				}
				stream := makeTopoMessages(t, topics, messages, 42)
				want := expectedCounts(subs, baseFilters, stream)
				ctx := context.Background()
				for _, m := range stream {
					if err := base.Publish(ctx, m); err != nil {
						t.Fatal(err)
					}
				}

				// Topology under test on an identical fresh stream.
				topo, err := NewTopology(TopologyConfig{
					Kind:    kind,
					Members: 3,
					Topics:  topics,
					Broker:  broker.Options{Engine: engine, SubscriberBuffer: 2 * messages},
				})
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = topo.Close() }()
				topoFilters := mkFilters()
				topoSubs := make([]*TopoSub, len(subs))
				for i, s := range subs {
					ts, err := topo.Subscribe(s.topic, topoFilters[i], i)
					if err != nil {
						t.Fatal(err)
					}
					topoSubs[i] = ts
				}
				for i, m := range makeTopoMessages(t, topics, messages, 42) {
					if err := topo.Publish(ctx, i, m); err != nil {
						t.Fatal(err)
					}
				}

				for i := range subs {
					name := fmt.Sprintf("sub%d(%s)", i, subs[i].topic)
					baseGot := collectExactly(t, "baseline "+name, baseSubs[i].Chan(), want[i])
					topoGot := collectExactly(t, kind.String()+" "+name, topoSubs[i].Chan(), want[i])
					if len(baseGot) != len(topoGot) {
						t.Fatalf("%s: multiset size %d vs baseline %d", name, len(topoGot), len(baseGot))
					}
					for body, n := range baseGot {
						if topoGot[body] != n {
							t.Fatalf("%s: message %q delivered %d times, baseline %d", name, body, topoGot[body], n)
						}
					}
				}
			})
		}
	}
}

// TestTopologyHashRebalanceLossless exercises the graceful join/leave
// path: a paced publisher stream interleaved with AddMember and
// RemoveMember must deliver exactly the acked multiset.
func TestTopologyHashRebalanceLossless(t *testing.T) {
	topics := make([]string, 8)
	for i := range topics {
		topics[i] = fmt.Sprintf("t%d", i)
	}
	topo, err := NewTopology(TopologyConfig{
		Kind:    TopologyHash,
		Members: 3,
		Topics:  topics,
		Broker:  broker.Options{SubscriberBuffer: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = topo.Close() }()

	subsByTopic := make(map[string]*TopoSub, len(topics))
	for i, tp := range topics {
		s, err := topo.Subscribe(tp, nil, i)
		if err != nil {
			t.Fatal(err)
		}
		subsByTopic[tp] = s
	}
	// Concurrent drainers keep merged channels moving during rebalances.
	var (
		gotMu sync.Mutex
		got   = make(map[string]map[string]int)
		wg    sync.WaitGroup
	)
	for tp, s := range subsByTopic {
		tp, s := tp, s
		got[tp] = make(map[string]int)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range s.Chan() {
				gotMu.Lock()
				got[tp][string(m.Body)]++
				gotMu.Unlock()
			}
		}()
	}

	ctx := context.Background()
	acked := make(map[string]map[string]int)
	for _, tp := range topics {
		acked[tp] = make(map[string]int)
	}
	rng := rand.New(rand.NewSource(7))
	publish := func(i int) {
		tp := topics[rng.Intn(len(topics))]
		m := jms.NewMessage(tp)
		m.SetBody([]byte(fmt.Sprintf("r-%d", i)))
		if err := topo.Publish(ctx, i, m); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		acked[tp][fmt.Sprintf("r-%d", i)]++
	}

	n := 0
	for batch := 0; batch < 6; batch++ {
		for i := 0; i < 100; i++ {
			publish(n)
			n++
		}
		switch batch {
		case 1:
			if _, err := topo.AddMember(); err != nil {
				t.Fatalf("add member: %v", err)
			}
		case 3:
			ids := topo.MemberIDs()
			if err := topo.RemoveMember(ids[rng.Intn(len(ids))]); err != nil {
				t.Fatalf("remove member: %v", err)
			}
		}
	}
	st := topo.Stats()
	if st.Rebalances < 2 {
		t.Fatalf("expected at least 2 rebalances, got %d", st.Rebalances)
	}
	if st.TopicsMoved == 0 {
		t.Fatal("rebalances moved no topics")
	}

	// Wait for the acked totals, then compare multisets exactly.
	wantTotal := n
	deadline := time.Now().Add(20 * time.Second)
	for {
		gotMu.Lock()
		total := 0
		for _, m := range got {
			for _, c := range m {
				total += c
			}
		}
		gotMu.Unlock()
		if total >= wantTotal || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, s := range subsByTopic {
		s.Unsubscribe()
	}
	wg.Wait()
	gotMu.Lock()
	defer gotMu.Unlock()
	for tp, want := range acked {
		for body, cnt := range want {
			if got[tp][body] != cnt {
				t.Fatalf("topic %s: %q delivered %d times, acked %d", tp, body, got[tp][body], cnt)
			}
		}
		if len(got[tp]) != len(want) {
			t.Fatalf("topic %s: delivered %d distinct, acked %d", tp, len(got[tp]), len(want))
		}
	}
}

// TestTopologyHashChaosKill drives concurrent publishers with retry
// against a mesh whose members are killed and re-added mid-stream: every
// acked message must be delivered exactly once — the chaos-failover
// acceptance gate at the topology layer.
func TestTopologyHashChaosKill(t *testing.T) {
	topics := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	topo, err := NewTopology(TopologyConfig{
		Kind:    TopologyHash,
		Members: 3,
		Topics:  topics,
		Broker:  broker.Options{SubscriberBuffer: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = topo.Close() }()

	subs := make(map[string]*TopoSub, len(topics))
	for i, tp := range topics {
		s, err := topo.Subscribe(tp, nil, i)
		if err != nil {
			t.Fatal(err)
		}
		subs[tp] = s
	}
	var (
		gotMu sync.Mutex
		got   = make(map[string]map[string]int)
		drnWG sync.WaitGroup
	)
	for tp, s := range subs {
		tp, s := tp, s
		got[tp] = make(map[string]int)
		drnWG.Add(1)
		go func() {
			defer drnWG.Done()
			for m := range s.Chan() {
				gotMu.Lock()
				got[tp][string(m.Body)]++
				gotMu.Unlock()
			}
		}()
	}

	const (
		publishers  = 4
		perPub      = 250
		retryBudget = 2000
	)
	var (
		ackMu sync.Mutex
		acked = make(map[string]map[string]int)
		pubWG sync.WaitGroup
	)
	for _, tp := range topics {
		acked[tp] = make(map[string]int)
	}
	ctx := context.Background()
	for p := 0; p < publishers; p++ {
		p := p
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			for i := 0; i < perPub; i++ {
				tp := topics[rng.Intn(len(topics))]
				body := fmt.Sprintf("p%d-%d", p, i)
				var err error
				for attempt := 0; attempt < retryBudget; attempt++ {
					m := jms.NewMessage(tp)
					m.SetBody([]byte(body))
					if err = topo.Publish(ctx, p, m); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					t.Errorf("publisher %d: message %s never accepted: %v", p, body, err)
					return
				}
				ackMu.Lock()
				acked[tp][body]++
				ackMu.Unlock()
			}
		}()
	}

	// Chaos: kill a member, re-add capacity, kill another — racing the
	// publishers above.
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		time.Sleep(20 * time.Millisecond)
		ids := topo.MemberIDs()
		if err := topo.Kill(ids[1]); err != nil {
			t.Errorf("kill %s: %v", ids[1], err)
			return
		}
		time.Sleep(20 * time.Millisecond)
		if _, err := topo.AddMember(); err != nil {
			t.Errorf("re-add: %v", err)
			return
		}
		time.Sleep(20 * time.Millisecond)
		ids = topo.MemberIDs()
		if err := topo.Kill(ids[0]); err != nil {
			t.Errorf("kill %s: %v", ids[0], err)
		}
	}()
	pubWG.Wait()
	<-chaosDone
	if t.Failed() {
		return
	}

	total := publishers * perPub
	deadline := time.Now().Add(20 * time.Second)
	for {
		gotMu.Lock()
		n := 0
		for _, m := range got {
			for _, c := range m {
				n += c
			}
		}
		gotMu.Unlock()
		if n >= total || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, s := range subs {
		s.Unsubscribe()
	}
	drnWG.Wait()

	gotMu.Lock()
	defer gotMu.Unlock()
	lost, dup := 0, 0
	for tp, want := range acked {
		for body, cnt := range want {
			switch g := got[tp][body]; {
			case g < cnt:
				lost++
			case g > cnt:
				dup++
			}
		}
	}
	if lost > 0 || dup > 0 {
		t.Fatalf("chaos run lost %d and duplicated %d acked messages", lost, dup)
	}
	if st := topo.Stats(); st.Rebalances < 2 {
		t.Fatalf("expected >=2 rebalances, got %+v", st)
	}
}

// TestTopologyPSRMembership covers mirror maintenance: a subscriber added
// before a join must also hear publishers that enter at the new member,
// and a graceful leave keeps the remaining mirrors intact.
func TestTopologyPSRMembership(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{
		Kind:    TopologyPSR,
		Members: 2,
		Topics:  []string{"x"},
		Broker:  broker.Options{SubscriberBuffer: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = topo.Close() }()
	s, err := topo.Subscribe("x", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pub := func(origin int, body string) {
		m := jms.NewMessage("x")
		m.SetBody([]byte(body))
		if err := topo.Publish(ctx, origin, m); err != nil {
			t.Fatalf("publish %s: %v", body, err)
		}
	}
	pub(0, "a")
	pub(1, "b")
	id, err := topo.AddMember()
	if err != nil {
		t.Fatal(err)
	}
	pub(2, "c") // enters at the new member; mirror must already exist
	if err := topo.RemoveMember(id); err != nil {
		t.Fatal(err)
	}
	pub(0, "d")
	want := map[string]bool{"a": true, "b": true, "c": true, "d": true}
	for i := 0; i < len(want); i++ {
		select {
		case m := <-s.Chan():
			if !want[string(m.Body)] {
				t.Fatalf("unexpected delivery %q", m.Body)
			}
			delete(want, string(m.Body))
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out, undelivered: %v", want)
		}
	}
}

// TestTopologySSRRestart re-homes nothing but must survive a member
// restart: the restarted member's subscribers are re-installed on the
// fresh broker instance and hear post-restart floods.
func TestTopologySSRRestart(t *testing.T) {
	topo, err := NewTopology(TopologyConfig{
		Kind:    TopologySSR,
		Members: 3,
		Topics:  []string{"x"},
		Broker:  broker.Options{SubscriberBuffer: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = topo.Close() }()
	s1, err := topo.Subscribe("x", nil, 1) // homed on member 1
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m := jms.NewMessage("x")
	m.SetBody([]byte("pre"))
	if err := topo.Publish(ctx, 0, m); err != nil {
		t.Fatal(err)
	}
	ids := topo.MemberIDs()
	if err := topo.Restart(ids[1]); err != nil {
		t.Fatal(err)
	}
	m2 := jms.NewMessage("x")
	m2.SetBody([]byte("post"))
	if err := topo.Publish(ctx, 0, m2); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"pre": true, "post": true}
	for i := 0; i < 2; i++ {
		select {
		case d := <-s1.Chan():
			if !want[string(d.Body)] {
				t.Fatalf("unexpected delivery %q", d.Body)
			}
			delete(want, string(d.Body))
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out, undelivered: %v", want)
		}
	}
}

// TestBridgeMaxHopsLine pins the hop-budget semantics on a line topology
// (the loop-suppression edge case): with maxHops=1 a message crosses one
// bridge only, so the far end of A→B→C stays silent; with maxHops=2 it
// arrives there exactly once.
func TestBridgeMaxHopsLine(t *testing.T) {
	for _, tc := range []struct {
		maxHops int
		wantFar int
	}{{1, 0}, {2, 1}} {
		tc := tc
		t.Run(fmt.Sprintf("maxHops=%d", tc.maxHops), func(t *testing.T) {
			mk := func() *broker.Broker {
				b := broker.New(broker.Options{})
				if err := b.ConfigureTopic("x"); err != nil {
					t.Fatal(err)
				}
				return b
			}
			a, bb, c := mk(), mk(), mk()
			defer func() { _ = a.Close(); _ = bb.Close(); _ = c.Close() }()
			ab, err := NewBridge(a, bb, "x", tc.maxHops)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = ab.Close() }()
			bc, err := NewBridge(bb, c, "x", tc.maxHops)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = bc.Close() }()

			mid, err := bb.Subscribe("x", nil)
			if err != nil {
				t.Fatal(err)
			}
			far, err := c.Subscribe("x", nil)
			if err != nil {
				t.Fatal(err)
			}
			m := jms.NewMessage("x")
			m.SetBody([]byte("hop"))
			if err := a.Publish(context.Background(), m); err != nil {
				t.Fatal(err)
			}
			// The middle broker always hears it (one hop).
			select {
			case <-mid.Chan():
			case <-time.After(10 * time.Second):
				t.Fatal("middle broker never received the message")
			}
			gotFar := 0
			timeout := time.After(300 * time.Millisecond)
		drain:
			for {
				select {
				case <-far.Chan():
					gotFar++
				case <-timeout:
					break drain
				}
			}
			if gotFar != tc.wantFar {
				t.Fatalf("far broker received %d messages, want %d", gotFar, tc.wantFar)
			}
		})
	}
}

// TestClusterRestartConcurrent is the chaos-coverage satellite for the
// bridge mesh: Cluster.Restart racing concurrent Publish and Subscribe
// churn. The subscriber on the stable member must receive every message
// accepted by that member, with no loss, dead-lock or race.
func TestClusterRestartConcurrent(t *testing.T) {
	c, err := NewMesh(3, "x", broker.Options{SubscriberBuffer: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	stable, err := c.Subscribe(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var (
		delivered sync.Map
		drainDone = make(chan struct{})
	)
	go func() {
		defer close(drainDone)
		for m := range stable.Chan() {
			delivered.Store(string(m.Body), true)
		}
	}()

	ctx := context.Background()
	const msgs = 300
	var pubWG sync.WaitGroup
	accepted := make([]string, 0, msgs)
	var accMu sync.Mutex
	for p := 0; p < 3; p++ {
		p := p
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for i := 0; i < msgs/3; i++ {
				body := fmt.Sprintf("m%d-%d", p, i)
				m := jms.NewMessage("x")
				m.SetBody([]byte(body))
				// Publish on the stable member only: restarts of members
				// 1 and 2 must not lose messages accepted by member 0.
				for {
					if err := c.Publish(ctx, 0, m); err == nil {
						break
					}
					time.Sleep(time.Millisecond)
				}
				accMu.Lock()
				accepted = append(accepted, body)
				accMu.Unlock()
			}
		}()
	}
	// Subscribe churn on a restarting member, racing Restart.
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for {
			select {
			case <-churnStop:
				return
			default:
			}
			s, err := c.Subscribe(2, nil)
			if err == nil {
				time.Sleep(2 * time.Millisecond)
				_ = s.Unsubscribe()
			}
		}
	}()
	for r := 0; r < 4; r++ {
		time.Sleep(10 * time.Millisecond)
		if err := c.Restart(1 + r%2); err != nil {
			t.Fatalf("restart: %v", err)
		}
	}
	pubWG.Wait()
	close(churnStop)
	churnWG.Wait()

	deadline := time.Now().Add(20 * time.Second)
	for {
		missing := 0
		accMu.Lock()
		for _, body := range accepted {
			if _, ok := delivered.Load(body); !ok {
				missing++
			}
		}
		accMu.Unlock()
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d accepted messages never delivered to the stable subscriber", missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
