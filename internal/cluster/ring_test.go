package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkRingInvariants asserts the two structural guarantees: every topic
// has exactly one owner drawn from the member set, and loads are balanced
// within one.
func checkRingInvariants(t *testing.T, r *Ring) {
	t.Helper()
	members := make(map[string]bool)
	for _, m := range r.Members() {
		members[m] = true
	}
	counts := make(map[string]int)
	for _, tp := range r.Topics() {
		owner, ok := r.Owner(tp)
		if !ok {
			t.Fatalf("topic %q has no owner", tp)
		}
		if !members[owner] {
			t.Fatalf("topic %q owned by non-member %q", tp, owner)
		}
		counts[owner]++
	}
	// Exactly-one-owner also means the per-member views partition the
	// topic set.
	total := 0
	seen := make(map[string]bool)
	for m := range members {
		for _, tp := range r.OwnedBy(m) {
			if seen[tp] {
				t.Fatalf("topic %q owned by two members", tp)
			}
			seen[tp] = true
			total++
		}
	}
	if total != len(r.Topics()) {
		t.Fatalf("ownership covers %d of %d topics", total, len(r.Topics()))
	}
	min, max := -1, -1
	for m := range members {
		n := counts[m]
		if min == -1 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced ring: loads %v", r.Loads())
	}
}

// TestRingProperty drives random membership histories and checks, at every
// event, ownership totality, balance, determinism, and the ⌈K/N⌉ movement
// bound the rebalancer promises.
func TestRingProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			k := 10 + rng.Intn(90) // topics
			topics := make([]string, k)
			for i := range topics {
				topics[i] = fmt.Sprintf("topic-%03d", i)
			}
			members := []string{"m0", "m1", "m2"}
			r, err := NewRing(members, topics)
			if err != nil {
				t.Fatal(err)
			}
			checkRingInvariants(t, r)

			live := map[string]bool{"m0": true, "m1": true, "m2": true}
			next := 3
			for ev := 0; ev < 40; ev++ {
				join := rng.Intn(2) == 0 || len(live) == 1
				if join {
					id := fmt.Sprintf("m%d", next)
					next++
					before := r.Loads()
					moved, err := r.Join(id)
					if err != nil {
						t.Fatal(err)
					}
					live[id] = true
					n := len(live)
					bound := (k + n - 1) / n
					if len(moved) > bound {
						t.Fatalf("join %s moved %d topics, bound ⌈%d/%d⌉=%d", id, len(moved), k, n, bound)
					}
					for tp, prev := range moved {
						if got, _ := r.Owner(tp); got != id {
							t.Fatalf("join: moved topic %q owned by %q, want %q", tp, got, id)
						}
						if before[prev] == 0 {
							t.Fatalf("join: topic %q stolen from unloaded %q", tp, prev)
						}
					}
				} else {
					// Pick a deterministic victim among live members.
					ms := r.Members()
					id := ms[rng.Intn(len(ms))]
					nBefore := len(live)
					bound := (k + nBefore - 1) / nBefore
					ownedBefore := len(r.OwnedBy(id))
					moved, err := r.Leave(id)
					if err != nil {
						t.Fatal(err)
					}
					delete(live, id)
					if len(moved) != ownedBefore {
						t.Fatalf("leave %s moved %d topics, owned %d", id, len(moved), ownedBefore)
					}
					if len(moved) > bound {
						t.Fatalf("leave %s moved %d topics, bound %d", id, len(moved), bound)
					}
					for tp, heir := range moved {
						if got, _ := r.Owner(tp); got != heir {
							t.Fatalf("leave: topic %q owned by %q, want heir %q", tp, got, heir)
						}
						if heir == id {
							t.Fatalf("leave: topic %q assigned back to leaver", tp)
						}
					}
				}
				checkRingInvariants(t, r)
			}
		})
	}
}

// TestRingDeterministic replays the same membership history twice and
// demands identical assignments — the property that lets load generators
// route client-side without an assignment exchange.
func TestRingDeterministic(t *testing.T) {
	build := func() *Ring {
		topics := make([]string, 31)
		for i := range topics {
			topics[i] = fmt.Sprintf("t%02d", i)
		}
		r, err := NewRing([]string{"a", "b"}, topics)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Join("c"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Leave("a"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Join("d"); err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := build(), build()
	for _, tp := range r1.Topics() {
		o1, _ := r1.Owner(tp)
		o2, _ := r2.Owner(tp)
		if o1 != o2 {
			t.Fatalf("non-deterministic assignment for %q: %q vs %q", tp, o1, o2)
		}
	}
}

// TestRingErrors covers the parameter guards.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, []string{"t"}); err == nil {
		t.Fatal("want error for empty members")
	}
	if _, err := NewRing([]string{"a"}, nil); err == nil {
		t.Fatal("want error for empty topics")
	}
	if _, err := NewRing([]string{"a", "a"}, []string{"t"}); err == nil {
		t.Fatal("want error for duplicate members")
	}
	r, err := NewRing([]string{"a"}, []string{"t1", "t2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Join("a"); err == nil {
		t.Fatal("want error for duplicate join")
	}
	if _, err := r.Leave("zz"); err == nil {
		t.Fatal("want error for unknown leave")
	}
	if _, err := r.Leave("a"); err == nil {
		t.Fatal("want error for removing the last member")
	}
}
