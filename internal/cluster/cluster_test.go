package cluster

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/jms"
)

func newMesh(t *testing.T, k int) *Cluster {
	t.Helper()
	c, err := NewMesh(k, "t", broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestBridgeForwardsOnce(t *testing.T) {
	src := broker.New(broker.Options{})
	dst := broker.New(broker.Options{})
	defer func() { _ = src.Close(); _ = dst.Close() }()
	for _, b := range []*broker.Broker{src, dst} {
		if err := b.ConfigureTopic("t"); err != nil {
			t.Fatal(err)
		}
	}
	br, err := NewBridge(src, dst, "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = br.Close() }()

	sub, err := dst.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("x"); err != nil {
		t.Fatal(err)
	}
	if err := src.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}
	got, err := sub.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.CorrelationID != "x" {
		t.Errorf("corrID = %q", got.Header.CorrelationID)
	}
	// The forwarded copy carries an exhausted hop budget.
	if hops, err := got.Int64Property(hopProperty); err != nil || hops != 0 {
		t.Errorf("hop property = %d, %v", hops, err)
	}
	fwd, dropped := br.Stats()
	if fwd != 1 || dropped != 0 {
		t.Errorf("bridge stats = %d/%d", fwd, dropped)
	}
}

func TestBridgeParams(t *testing.T) {
	b := broker.New(broker.Options{})
	defer func() { _ = b.Close() }()
	if _, err := NewBridge(nil, b, "t", 1); !errors.Is(err, ErrParams) {
		t.Error("nil src accepted")
	}
	if _, err := NewBridge(b, b, "t", 1); !errors.Is(err, ErrParams) {
		t.Error("self bridge accepted")
	}
	b2 := broker.New(broker.Options{})
	defer func() { _ = b2.Close() }()
	if _, err := NewBridge(b, b2, "t", 0); !errors.Is(err, ErrParams) {
		t.Error("maxHops=0 accepted")
	}
	if _, err := NewBridge(b, b2, "missing", 1); err == nil {
		t.Error("missing topic accepted")
	}
}

func TestMeshReachesEveryMemberExactlyOnce(t *testing.T) {
	const k = 3
	c := newMesh(t, k)

	// One subscriber per member.
	subs := make([]*broker.Subscriber, k)
	for i := range subs {
		s, err := c.Subscribe(i, filter.All{})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("only-once"); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, 0, m); err != nil {
		t.Fatal(err)
	}

	for i, s := range subs {
		got, err := s.Receive(ctx)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if got.Header.CorrelationID != "only-once" {
			t.Errorf("member %d corrID = %q", i, got.Header.CorrelationID)
		}
	}
	// No echoes: give the mesh a moment, then verify no member got the
	// message twice.
	time.Sleep(50 * time.Millisecond)
	for i, s := range subs {
		if n := s.Delivered(); n != 1 {
			t.Errorf("member %d delivered %d copies, want exactly 1", i, n)
		}
	}
}

func TestMeshFilterOnOneMember(t *testing.T) {
	c := newMesh(t, 3)
	f, err := filter.NewCorrelationID("#7")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(2, f)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Publish matching traffic on a different member: the mesh must carry
	// it to the filter.
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("#7"); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, 0, m); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatal(err)
	}
	// Non-matching traffic does not reach it.
	other := jms.NewMessage("t")
	if err := other.SetCorrelationID("#8"); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, 1, other); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if n := sub.Delivered(); n != 1 {
		t.Errorf("Delivered = %d, want 1", n)
	}
}

func TestMeshParamsAndClose(t *testing.T) {
	if _, err := NewMesh(1, "t", broker.Options{}); !errors.Is(err, ErrParams) {
		t.Error("k=1 accepted")
	}
	c, err := NewMesh(2, "t", broker.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), 5, jms.NewMessage("t")); !errors.Is(err, ErrParams) {
		t.Error("out-of-range member accepted")
	}
	if _, err := c.Subscribe(-1, filter.All{}); !errors.Is(err, ErrParams) {
		t.Error("negative member accepted")
	}
	if len(c.Brokers()) != 2 {
		t.Errorf("Brokers = %d", len(c.Brokers()))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close err = %v", err)
	}
}

// TestMeshHealsAfterMemberRestart replaces a member mid-flight and
// verifies both bridge directions recover: bridges sourcing from the
// restarted member resubscribe against its replacement, and bridges
// targeting it deliver into the replacement.
func TestMeshHealsAfterMemberRestart(t *testing.T) {
	const k = 3
	c := newMesh(t, k)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(-1); !errors.Is(err, ErrParams) {
		t.Errorf("Restart(-1) err = %v", err)
	}

	subs := make([]*broker.Subscriber, k)
	for i := range subs {
		s, err := c.Subscribe(i, filter.All{})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}

	// Healed source side: publish probes on the restarted member until one
	// crosses a bridge (the 1->0 bridge must first resubscribe against the
	// replacement broker; probes published before that are lost, as with a
	// real non-durable restart).
	probeSeen := make(chan struct{})
	go func() {
		for {
			m, err := subs[0].Receive(ctx)
			if err != nil {
				return
			}
			if m.Header.CorrelationID == "probe" {
				close(probeSeen)
				return
			}
		}
	}()
probing:
	for {
		m := jms.NewMessage("t")
		if err := m.SetCorrelationID("probe"); err != nil {
			t.Fatal(err)
		}
		if err := c.Publish(ctx, 1, m); err != nil {
			t.Fatal(err)
		}
		select {
		case <-probeSeen:
			break probing
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			t.Fatal("bridge from restarted member never resubscribed")
		}
	}
	if c.Reconnects() == 0 {
		t.Error("mesh healed but Reconnects() = 0")
	}

	// Healed target side: a message published elsewhere reaches a
	// subscriber on the replacement member.
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("final"); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, 0, m); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		for {
			got, err := subs[i].Receive(ctx)
			if err != nil {
				t.Fatalf("member %d: %v", i, err)
			}
			if got.Header.CorrelationID == "final" {
				break
			}
		}
	}

	// The restarted member must not echo: its subscriber saw each probe at
	// most once plus the final message; strictly fewer deliveries than
	// 2x(published) proves the hop budget still holds. A cheap check:
	// no duplicates of "final" arrive within a settle window.
	time.Sleep(50 * time.Millisecond)
	select {
	case got := <-subs[1].Chan():
		if got.Header.CorrelationID == "final" {
			t.Error("restarted member received the message twice")
		}
	default:
	}
}

// TestBridgeForwardRetriesWhileTargetRestarts pins the dst-side retry
// path: the bridge holds a message while its target is closed and
// delivers it once a replacement appears.
func TestBridgeForwardRetriesWhileTargetRestarts(t *testing.T) {
	src := broker.New(broker.Options{})
	defer func() { _ = src.Close() }()
	if err := src.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	dst := broker.New(broker.Options{})
	if err := dst.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	current := func() *broker.Broker {
		mu.Lock()
		defer mu.Unlock()
		return dst
	}
	br, err := NewBridgeFunc(
		func() *broker.Broker { return src },
		current,
		"t", 1, client.Backoff{Base: time.Millisecond, Max: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = br.Close() }()

	// Close the target with no replacement yet, then publish: the bridge
	// must park in its retry loop instead of dying.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID("held"); err != nil {
		t.Fatal(err)
	}
	if err := src.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	next := broker.New(broker.Options{})
	defer func() { _ = next.Close() }()
	if err := next.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	sub, err := next.Subscribe("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	dst = next
	mu.Unlock()

	got, err := sub.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.CorrelationID != "held" {
		t.Errorf("corrID = %q", got.Header.CorrelationID)
	}
}

func TestMeshCapacityModel(t *testing.T) {
	model := core.TableICorrelationID
	single, err := model.Capacity(0.9, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	mesh1, err := MeshCapacity(model, 1, 1000, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// k=1 degenerates to the single-server formula.
	if math.Abs(mesh1-single)/single > 1e-12 {
		t.Errorf("MeshCapacity(k=1) = %g, single = %g", mesh1, single)
	}
	// For filter-dominated workloads, capacity grows with k.
	mesh4, err := MeshCapacity(model, 4, 1000, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if mesh4 <= mesh1 {
		t.Errorf("mesh capacity did not grow: k=4 %g vs k=1 %g", mesh4, mesh1)
	}
	// Sub-linear speed-up: the per-member t_rcv is not divided by k.
	if mesh4 >= 4*mesh1 {
		t.Errorf("mesh speed-up superlinear: %g vs %g", mesh4, 4*mesh1)
	}
	// Receive-dominated workloads (no filters) cannot scale this way: the
	// mesh capacity stays within a receive-bound of the single server.
	singleNoFltr, err := MeshCapacity(model, 1, 0, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	mesh4NoFltr, err := MeshCapacity(model, 4, 0, 1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	bound := 0.9 / model.TRcv
	if mesh4NoFltr > bound {
		t.Errorf("no-filter mesh capacity %g exceeds receive bound %g", mesh4NoFltr, bound)
	}
	_ = singleNoFltr
	if _, err := MeshCapacity(model, 0, 1, 1, 0.9); !errors.Is(err, ErrParams) {
		t.Error("k=0 accepted")
	}
	if _, err := MeshCapacity(core.CostModel{}, 2, 1, 1, 0.9); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestMeshSaturatedThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	// Sanity: with many filters spread over members, the mesh sustains a
	// higher publish rate than a single broker with all filters.
	measure := func(brokers int, filtersPer int) float64 {
		t.Helper()
		var publish func(ctx context.Context, m *jms.Message) error
		var closeAll func()
		if brokers == 1 {
			b := broker.New(broker.Options{InFlight: 256, SubscriberBuffer: 1 << 12})
			if err := b.ConfigureTopic("t"); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < filtersPer; i++ {
				f, err := filter.NewCorrelationID("#nope")
				if err != nil {
					t.Fatal(err)
				}
				s, err := b.Subscribe("t", f)
				if err != nil {
					t.Fatal(err)
				}
				go func() {
					for range s.Chan() {
					}
				}()
			}
			publish = b.Publish
			closeAll = func() { _ = b.Close() }
		} else {
			c, err := NewMesh(brokers, "t", broker.Options{InFlight: 256, SubscriberBuffer: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			for member := 0; member < brokers; member++ {
				for i := 0; i < filtersPer/brokers; i++ {
					f, err := filter.NewCorrelationID("#nope")
					if err != nil {
						t.Fatal(err)
					}
					s, err := c.Subscribe(member, f)
					if err != nil {
						t.Fatal(err)
					}
					go func() {
						for range s.Chan() {
						}
					}()
				}
			}
			publish = func(ctx context.Context, m *jms.Message) error {
				return c.Publish(ctx, 0, m)
			}
			closeAll = func() { _ = c.Close() }
		}
		defer closeAll()

		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		count := 0
		for ctx.Err() == nil {
			if err := publish(ctx, jms.NewMessage("t")); err != nil {
				break
			}
			count++
		}
		return float64(count) / 0.3
	}
	single := measure(1, 400)
	mesh := measure(3, 400)
	t.Logf("single=%.0f msgs/s mesh(3)=%.0f msgs/s", single, mesh)
	// Whether the mesh wins depends on t_fltr/t_rcv: with this broker's
	// very cheap exact-match filters the added per-member receive work
	// dominates (MeshCapacity with the paper's much larger t_fltr predicts
	// a win — see TestMeshCapacityModel). Here we only require sustained
	// end-to-end operation under saturation.
	if mesh < 500 {
		t.Errorf("mesh throughput %.0f msgs/s implausibly low", mesh)
	}
	if single < 500 {
		t.Errorf("single-broker throughput %.0f msgs/s implausibly low", single)
	}
}
