package conformance

import (
	"testing"

	"repro/internal/mg1"
)

// batchFamilies returns one representative of each batch-size law the
// batched path supports: fixed (every publish coalesces the same count),
// geometric (a memoryless batcher cut by timeouts), and uniform (a
// bounded batcher under uneven producers).
func batchFamilies(t *testing.T) map[string]mg1.BatchDist {
	t.Helper()
	fixed, err := mg1.NewFixedBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	geom, err := mg1.NewGeometricBatch(0.25)
	if err != nil {
		t.Fatal(err)
	}
	unif, err := mg1.NewUniformBatch(7)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]mg1.BatchDist{
		"fixed-4":        fixed,
		"geometric-0.25": geom,
		"uniform-7":      unif,
	}
}

// TestAnalyticVsSimulatedBatch pins the M^X/G/1 extension the same way
// TestAnalyticVsSimulated pins the per-message model: for each batch law
// crossed with each replication family, the closed forms and the batched
// Lindley simulator must agree on E[W] within 3% and on the 99% quantile
// within 15% (the quantile goes through the Gamma approximation, which is
// approximate by construction). Fixed seeds; the tolerances hold with
// margin at these sample sizes (CI-safe).
func TestAnalyticVsSimulatedBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical run")
	}
	rnames := []string{"deterministic", "scaledBernoulli", "binomial"}
	xnames := []string{"fixed-4", "geometric-0.25", "uniform-7"}
	repls := families(t)
	batches := batchFamilies(t)
	for ri, rname := range rnames {
		for xi, xname := range xnames {
			r, x := repls[rname], batches[xname]
			cfg := BatchConfig{
				D:         1.0,
				TTx:       0.2,
				R:         r,
				X:         x,
				Rho:       0.7,
				Customers: 2000000,
				Warmup:    100000,
				// Deterministic per-combination seed: map iteration order
				// must not decide which case gets which sample path.
				Seed: int64(41 + 3*ri + xi),
			}
			t.Run(rname+"/"+xname, func(t *testing.T) {
				t.Parallel()
				a, err := AnalyticBatch(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s, err := SimulatedBatch(cfg)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("analytic mean=%.4f q99=%.4f | simulated mean=%.4f q99=%.4f",
					a.MeanWait, a.Quantile, s.MeanWait, s.Quantile)
				if err := agree("mean wait", a.MeanWait, s.MeanWait, 0.03, 0); err != nil {
					t.Error(err)
				}
				if err := agree("99% quantile", a.Quantile, s.Quantile, 0.15, 0); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestBatchConfigCollapses pins that a batch size of exactly one
// reproduces the per-message legs: both batched legs must return the same
// points as Analytic/Simulated under identical seeds.
func TestBatchConfigCollapses(t *testing.T) {
	one, err := mg1.NewFixedBatch(1)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range families(t) {
		cfg := Config{D: 1.0, TTx: 0.2, R: r, Rho: 0.7,
			Customers: 50000, Warmup: 2500, Seed: 9}
		bcfg := BatchConfig{D: cfg.D, TTx: cfg.TTx, R: r, X: one, Rho: cfg.Rho,
			Customers: cfg.Customers, Warmup: cfg.Warmup, Seed: cfg.Seed}
		a, err := Analytic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ab, err := AnalyticBatch(bcfg)
		if err != nil {
			t.Fatal(err)
		}
		// The analytic collapse is exact (shared closed forms).
		if err := CheckAgreement(a, ab, 1e-12, 0); err != nil {
			t.Errorf("%s: analytic collapse: %v", name, err)
		}
	}
}
