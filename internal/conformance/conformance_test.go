package conformance

import (
	"testing"

	"repro/internal/replication"
)

// families returns one representative of each replication-grade family,
// all with mean 5, matching the paper's Section IV-B trio.
func families(t *testing.T) map[string]replication.Distribution {
	t.Helper()
	det, err := replication.NewDeterministic(5)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := replication.NewScaledBernoulli(20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := replication.NewBinomial(20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]replication.Distribution{
		"deterministic":   det,
		"scaledBernoulli": sb,
		"binomial":        bin,
	}
}

// TestAnalyticVsSimulated is the statistical conformance check: for all
// three replication families the closed forms and the Lindley-recursion
// simulator must agree on E[W] and the 99% quantile. Fixed seed; the
// tolerances hold with margin at these sample sizes (CI-safe).
func TestAnalyticVsSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical run")
	}
	for name, r := range families(t) {
		r := r
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				D:         1.0,
				TTx:       0.2,
				R:         r,
				Rho:       0.7,
				Customers: 400000,
				Warmup:    20000,
				Seed:      7,
			}
			a, err := Analytic(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Simulated(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("analytic mean=%.4f q99=%.4f | simulated mean=%.4f q99=%.4f",
				a.MeanWait, a.Quantile, s.MeanWait, s.Quantile)
			// E[W] is exact (Pollaczek–Khinchine): tight tolerance. The
			// quantile goes through the Gamma approximation of Eq. 20,
			// which is approximate by construction: looser tolerance.
			if err := agree("mean wait", a.MeanWait, s.MeanWait, 0.03, 0); err != nil {
				t.Error(err)
			}
			if err := agree("99% quantile", a.Quantile, s.Quantile, 0.15, 0); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCheckAgreement(t *testing.T) {
	a := Point{MeanWait: 1.00, Quantile: 5.0}
	b := Point{MeanWait: 1.04, Quantile: 5.2}
	if err := CheckAgreement(a, b, 0.05, 0); err != nil {
		t.Errorf("5%% band rejected 4%% error: %v", err)
	}
	if err := CheckAgreement(a, b, 0.01, 0); err == nil {
		t.Error("1% band accepted 4% error")
	}
	// The absolute floor tolerates noise around zero.
	if err := CheckAgreement(Point{}, Point{MeanWait: 1e-9, Quantile: 2e-9}, 0, 1e-8); err != nil {
		t.Errorf("absolute floor failed: %v", err)
	}
}
