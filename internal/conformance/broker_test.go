package conformance

import (
	"testing"

	"repro/internal/faultnet"
)

// TestBrokerConformance runs the live leg: the real broker behind a
// transport that kills connections on a byte budget, loaded by a
// reliable client. The observed waiting times must land in the same
// regime as the M/G/1 prediction at the achieved arrival rate — a
// sanity band, not the simulator's tight tolerance: scheduler and timer
// noise on a shared test machine genuinely perturbs microsecond-scale
// waits.
func TestBrokerConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock statistical run")
	}
	if raceEnabled {
		t.Skip("race instrumentation slows dispatch ~10x, overloading the calibrated target utilization")
	}
	res, err := RunBroker(BrokerConfig{
		Rho:      0.6,
		Messages: 4000,
		Seed:     11,
		Faults:   faultnet.Config{ResetAfterBytes: 96 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E[B]=%.2fus lambda=%.0f/s rho=%.3f", res.MeanService*1e6, res.Lambda, res.Rho)
	t.Logf("baseline  mean=%.2fus q99=%.2fus", res.Baseline.MeanWait*1e6, res.Baseline.Quantile*1e6)
	t.Logf("observed  mean=%.2fus q99=%.2fus (n=%d)", res.Observed.MeanWait*1e6, res.Observed.Quantile*1e6, res.Waits)
	t.Logf("predicted mean=%.2fus q99=%.2fus", res.Predicted.MeanWait*1e6, res.Predicted.Quantile*1e6)
	t.Logf("resets=%d reconnects=%d publishRetries=%d duplicatesSuppressed=%d",
		res.Resets, res.Reconnects, res.PublishRetries, res.Duplicates)

	// The transport must actually have hurt, and the reliability layer
	// must have carried every message through regardless (RunBroker
	// fails outright when fewer than Messages dispatches are observed).
	if res.Resets < 2 {
		t.Errorf("Resets = %d, want >= 2: the fault budget injected almost nothing", res.Resets)
	}
	if res.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1", res.Reconnects)
	}

	// Same-regime band: within a factor ~3 plus a floor absorbing timer
	// granularity.
	if err := CheckAgreement(res.Observed, res.Predicted, 0.70, 100e-6); err != nil {
		t.Error(err)
	}
}
