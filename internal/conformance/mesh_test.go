package conformance

import (
	"math"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distrib"
)

// meshCalibration is the shared stage-time measurement config. The
// small subscriber buffer matters: calibrations run at the legs' own
// filter burdens (tens of thousands of subscriptions), where the default
// buffer would allocate gigabytes of idle channel capacity.
var meshCalibration = bench.NativeConfig{
	FilterType:       core.CorrelationIDFiltering,
	Repetitions:      3,
	SubscriberBuffer: 8,
}

// meshNFltrPerSub keeps every leg's per-member filter-scan set several
// times the L2 size: the per-filter cost is dominated by cache misses,
// so a scan set that fits L2 during the single-broker calibration but is
// evicted by the other members' interleaved scans in the live mesh would
// break the constant-t_fltr premise both sides must share. Deep in the
// cache hierarchy the cost is uniform and the linear model holds.
const meshNFltrPerSub = 16000

// pacedMeshModel calibrates the paced cost model once per test binary
// (the probes take a few seconds each) over the burden range the legs
// span: meshNFltrPerSub (SSR) up to 5x (the planned PSR config B).
var pacedMesh struct {
	once  sync.Once
	model core.CostModel
	err   error
}

func pacedMeshModel(t *testing.T) core.CostModel {
	t.Helper()
	pacedMesh.once.Do(func() {
		pacedMesh.model, pacedMesh.err = CalibrateMeshModelPaced(
			meshCalibration,
			[]int{meshNFltrPerSub, 3 * meshNFltrPerSub, 5 * meshNFltrPerSub},
			2, 0.15, 500, 11)
	})
	if pacedMesh.err != nil {
		t.Fatal(pacedMesh.err)
	}
	m := pacedMesh.model
	if m.TRcv <= 0 || m.TFltr <= 0 || m.TTx <= 0 {
		t.Fatalf("degenerate paced model %+v", m)
	}
	return m
}

// ssrWinsM returns the smallest subscriber count m for which Eq. 23
// predicts SSR to win by at least the margin on the given model: the
// PSR per-server denominator must exceed margin*n times SSR's. With the
// filter term dominating (meshNFltrPerSub), this is near margin*n.
func ssrWinsM(model core.CostModel, members, r int, margin float64) int {
	base := model.TRcv + float64(r)*model.TTx
	f := float64(meshNFltrPerSub) * model.TFltr
	m := int(math.Ceil((margin*float64(members)*(base+f) - base) / f))
	if m < 3 {
		m = 3
	}
	if m > 16 {
		m = 16
	}
	return m
}

// TestMeshCapacityConformance drives live 3-broker PSR and SSR meshes
// and checks the capacities implied by the measured per-member service
// times against Eqs. 21 and 22 on the independently calibrated cost
// model, then replays the Eq. 23 crossover on the same runs: a
// configuration where the model predicts PSR to win and one where it
// predicts SSR to win, both confirmed by the measured ordering.
func TestMeshCapacityConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock statistical run")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the calibrated stage times the capacities are implied from")
	}

	const (
		members = 3
		r       = 2
		margin  = 1.6
		mA      = 2 // PSR predicted winner for any model: slowdown <= 2 < n
	)

	model := pacedMeshModel(t)
	mB := ssrWinsM(model, members, r, margin)
	t.Logf("model %+v, crossover plan mA=%d mB=%d nFltrPerSub=%d", model, mA, mB, meshNFltrPerSub)

	run := func(kind cluster.TopologyKind, m int, seed int64) MeshResult {
		t.Helper()
		res, err := RunMesh(MeshConfig{
			Kind:        kind,
			Members:     members,
			M:           m,
			NFltrPerSub: meshNFltrPerSub,
			R:           r,
			Seed:        seed,
			Model:       model,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v m=%d: implied %.0f/s predicted %.0f/s (E[B] %v, lambda %v, wait obs %.1fus pred %.1fus)",
			kind, m, res.ImpliedCapacity, res.PredictedCapacity,
			res.MemberService, res.MemberLambda,
			res.ObservedWait*1e6, res.PredictedWait*1e6)
		return res
	}

	psrA := run(cluster.TopologyPSR, mA, 1)
	ssr := run(cluster.TopologySSR, mA, 2)
	psrB := run(cluster.TopologyPSR, mB, 3)

	// The acceptance envelope: implied vs predicted within 15%.
	for _, res := range []MeshResult{psrA, ssr, psrB} {
		if err := res.CheckCapacity(0.15); err != nil {
			t.Errorf("m=%d: %v", res.Scenario.M, err)
		}
	}

	// SSR floods every message to the other members; PSR never forwards.
	if psrA.Forwards != 0 || psrB.Forwards != 0 {
		t.Errorf("PSR forwarded %d/%d messages", psrA.Forwards, psrB.Forwards)
	}
	if ssr.Forwards == 0 {
		t.Error("SSR flood forwarded nothing")
	}

	// Eq. 23, predicted on the reference model: opposite winners in the
	// two configurations.
	scenA, scenB := psrA.Scenario, psrB.Scenario
	scenA.Model, scenB.Model = model, model
	winA, err := distrib.PSROutperformsSSR(scenA)
	if err != nil {
		t.Fatal(err)
	}
	winB, err := distrib.PSROutperformsSSR(scenB)
	if err != nil {
		t.Fatal(err)
	}
	if !winA || winB {
		t.Fatalf("crossover plan failed: predicted PSR wins = %v/%v, want true/false", winA, winB)
	}

	// Eq. 23, measured: the implied capacities must order the same way.
	if psrA.ImpliedCapacity <= ssr.ImpliedCapacity {
		t.Errorf("config A: implied PSR %.0f/s not above implied SSR %.0f/s",
			psrA.ImpliedCapacity, ssr.ImpliedCapacity)
	}
	if psrB.ImpliedCapacity >= ssr.ImpliedCapacity {
		t.Errorf("config B: implied PSR %.0f/s not below implied SSR %.0f/s",
			psrB.ImpliedCapacity, ssr.ImpliedCapacity)
	}
}

// TestMeshWaitingConformance checks the waiting-time side of the mesh
// leg: a PSR mesh loaded through a single origin member (so exactly one
// member carries a meaningful utilization on this shared machine) must
// show a baseline-subtracted mean wait near the M/G/1 prediction at the
// measured arrival rate — the same envelope the single-broker wall-clock
// leg uses.
func TestMeshWaitingConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock statistical run")
	}
	if raceEnabled {
		t.Skip("race instrumentation overloads the calibrated target utilization")
	}

	res, err := RunMesh(MeshConfig{
		Kind:         cluster.TopologyPSR,
		Members:      3,
		M:            2,
		NFltrPerSub:  meshNFltrPerSub,
		R:            2,
		LoadRho:      0.45,
		Messages:     2000,
		SingleOrigin: true,
		Seed:         4,
		Model:        pacedMeshModel(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wait obs %.1fus pred %.1fus baseline %.1fus (E[B] %v, lambda %v)",
		res.ObservedWait*1e6, res.PredictedWait*1e6, res.BaselineWait*1e6,
		res.MemberService, res.MemberLambda)

	if len(res.MemberService) != 1 {
		t.Fatalf("single-origin PSR loaded %d members, want 1", len(res.MemberService))
	}
	if err := agree("mesh mean wait", res.ObservedWait, res.PredictedWait, 0.70, 100e-6); err != nil {
		t.Error(err)
	}
	if err := res.CheckCapacity(0.15); err != nil {
		t.Error(err)
	}
}
