package conformance

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/broker"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/metrics"
	"repro/internal/mg1"
	"repro/internal/stats"
	"repro/internal/wire"
)

// BrokerConfig parameterizes the live-broker leg: the real broker behind
// a fault-injecting transport, loaded at a target utilization by a
// reliable client publishing on a Poisson schedule.
type BrokerConfig struct {
	// Rho is the target utilization of the broker's dispatch stage. The
	// whole benchmark shares one machine (publisher, transport, broker),
	// so the default keeps the total CPU demand clearly stable even on a
	// single-core runner. Default 0.3.
	Rho float64
	// NFltr is the number of installed non-matching filters; it scales
	// E[B] = D + n_fltr·t_fltr up so queueing delays dominate scheduler
	// and timer noise, and must be large enough that lambda = Rho/E[B]
	// stays below the publish-path throughput. Default 30000.
	NFltr int
	// Messages is the number of published messages. Default 3000.
	Messages int
	// Warmup initial waits are discarded. Default Messages/10.
	Warmup int
	// Seed fixes the Poisson schedule and the fault schedule.
	Seed int64
	// Quantile is the compared tail quantile. Default 0.99.
	Quantile float64
	// Publishers is the number of concurrent senders draining the shared
	// schedule. It must cover lambda times the publish RTT with room for
	// Poisson bursts, or the send pool reshapes (smooths) the arrival
	// process it is supposed to deliver. Default 32.
	Publishers int
	// Faults configures the transport; Seed defaults to Seed.
	Faults faultnet.Config
	// Calibration configures the saturated E[B] measurement. The
	// zero value uses short windows suitable for tests.
	Calibration bench.NativeConfig
}

func (c BrokerConfig) withDefaults() BrokerConfig {
	if c.Rho <= 0 {
		c.Rho = 0.3
	}
	if c.NFltr <= 0 {
		c.NFltr = 30000
	}
	if c.Messages <= 0 {
		c.Messages = 3000
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Messages / 10
	}
	if c.Quantile <= 0 {
		c.Quantile = 0.99
	}
	if c.Publishers <= 0 {
		c.Publishers = 32
	}
	if c.Faults.Seed == 0 {
		c.Faults.Seed = c.Seed
	}
	if c.Calibration.FilterType == 0 {
		c.Calibration.FilterType = core.CorrelationIDFiltering
	}
	if c.Calibration.Warmup <= 0 {
		c.Calibration.Warmup = 50 * time.Millisecond
	}
	if c.Calibration.Measure <= 0 {
		c.Calibration.Measure = 200 * time.Millisecond
	}
	if c.Calibration.SubscriberBuffer <= 0 {
		// The filter population is large and almost all of it never
		// matches; small per-subscriber buffers keep memory bounded.
		c.Calibration.SubscriberBuffer = 512
	}
	return c
}

// BrokerResult reports the live leg next to its prediction, plus the
// fault and reliability counters proving the transport actually hurt.
type BrokerResult struct {
	// Observed is the broker's measured waiting-time point at the target
	// load, with the zero-load Baseline mean subtracted: the broker's
	// arrival-to-dispatch path has a constant scheduling-latency floor
	// (channel handoff, goroutine wake-up) that the M/G/1 model of the
	// queue does not describe, so it is calibrated out.
	Observed Point
	// Baseline is the raw zero-load point measuring that floor.
	Baseline Point
	// Predicted is the M/G/1 point at the achieved arrival rate with the
	// calibrated (deterministic) service time.
	Predicted Point
	// MeanService is the calibrated E[B] in seconds.
	MeanService float64
	// Lambda is the achieved arrival rate (msgs/s) and Rho the achieved
	// utilization Lambda·E[B].
	Lambda, Rho float64
	// Waits is the number of post-warmup observations.
	Waits int
	// Resets counts transport-injected connection kills.
	Resets uint64
	// Reconnects, PublishRetries and Duplicates count the reliability
	// layer's responses: redials, republished messages, and server-side
	// suppressed duplicates.
	Reconnects, PublishRetries, Duplicates uint64
}

// RunBroker measures the live broker over a faulty transport and returns
// the observed point next to the model prediction. The service time is
// calibrated first from a saturated run (E[B] = 1/throughput, the
// paper's Section III reading); the broker is then loaded at
// lambda = Rho/E[B] by a reliable client whose publishes survive the
// injected faults. Waiting times are observed broker-side (arrival to
// dispatch), so the transport shapes only the arrival process.
func RunBroker(cfg BrokerConfig) (BrokerResult, error) {
	cfg = cfg.withDefaults()

	cal, err := bench.MeasureScenario(cfg.Calibration, cfg.NFltr, 1)
	if err != nil {
		return BrokerResult{}, fmt.Errorf("conformance: calibration: %w", err)
	}
	eb := cal.MeanServiceTime
	lambda := cfg.Rho / eb

	// Broker with the calibrated filter population and a wait observer.
	var (
		waitMu sync.Mutex
		waits  []float64
	)
	b := broker.New(broker.Options{
		InFlight:         256,
		SubscriberBuffer: 512,
		WaitObserver: func(w time.Duration) {
			waitMu.Lock()
			waits = append(waits, w.Seconds())
			waitMu.Unlock()
		},
	})
	defer func() { _ = b.Close() }()
	const topicName = "conformance"
	if err := b.ConfigureTopic(topicName); err != nil {
		return BrokerResult{}, err
	}
	// The non-matching population never receives anything, so the
	// subscriptions need no drain goroutines.
	for i := 0; i < cfg.NFltr; i++ {
		f, err := filter.NewCorrelationID(fmt.Sprintf("#%d", i+1))
		if err != nil {
			return BrokerResult{}, err
		}
		if _, err := b.Subscribe(topicName, f); err != nil {
			return BrokerResult{}, err
		}
	}

	// Two front doors to the same broker: the loaded phase goes through
	// the faulty transport; the zero-load baseline phase uses a clean
	// one, so the measured dispatch-latency floor is not distorted by
	// fault-induced arrival bursts.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BrokerResult{}, err
	}
	fn := faultnet.New(cfg.Faults)
	srv := wire.Serve(b, fn.Wrap(ln))
	defer func() { _ = srv.Close() }()
	lnBase, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BrokerResult{}, err
	}
	srvBase := wire.Serve(b, lnBase)
	defer func() { _ = srvBase.Close() }()

	// Reliable publisher and subscriber sharing one metrics registry.
	reg := metrics.NewRegistry()
	dialCtx, cancelDial := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelDial()
	opts := client.ReliableOptions{
		Metrics: reg,
		Backoff: client.Backoff{Base: time.Millisecond, Max: 50 * time.Millisecond},
		Seed:    cfg.Seed + 1,
	}
	pub, err := client.DialReliable(ln.Addr().String(), opts)
	if err != nil {
		return BrokerResult{}, err
	}
	defer func() { _ = pub.Close() }()
	pubBase, err := client.DialReliable(lnBase.Addr().String(), opts)
	if err != nil {
		return BrokerResult{}, err
	}
	defer func() { _ = pubBase.Close() }()
	rcv, err := client.DialReliable(ln.Addr().String(), opts)
	if err != nil {
		return BrokerResult{}, err
	}
	defer func() { _ = rcv.Close() }()
	rs, err := rcv.Subscribe(dialCtx, topicName, wire.FilterSpec{
		Mode: wire.FilterCorrelationID,
		Expr: "#0",
	}, 1<<12)
	if err != nil {
		return BrokerResult{}, err
	}
	go func() {
		for range rs.Chan() {
		}
	}()

	pubCtx, cancelPub := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancelPub()
	rng := stats.NewRNG(cfg.Seed)
	takeWaits := func(from, warmup int) (*stats.Summary, error) {
		waitMu.Lock()
		defer waitMu.Unlock()
		s := stats.NewSummary()
		for _, w := range waits[from+warmup:] {
			s.Add(w)
		}
		return s, nil
	}
	phase := func(p *client.Reliable, lambda float64, messages, warmup int) (Point, float64, error) {
		before := func() int {
			waitMu.Lock()
			defer waitMu.Unlock()
			return len(waits)
		}()
		elapsed, err := publishPoisson(pubCtx, p, topicName, rng, lambda, messages, cfg.Publishers)
		if err != nil {
			return Point{}, 0, err
		}
		// Every accepted message is dispatched exactly once; wait for
		// the observer to catch up with the tail of the queue.
		deadline := time.Now().Add(30 * time.Second)
		for {
			waitMu.Lock()
			n := len(waits)
			waitMu.Unlock()
			if n >= before+messages {
				break
			}
			if time.Now().After(deadline) {
				return Point{}, 0, fmt.Errorf("conformance: broker dispatched %d of %d messages",
					n-before, messages)
			}
			time.Sleep(5 * time.Millisecond)
		}
		s, err := takeWaits(before, warmup)
		if err != nil {
			return Point{}, 0, err
		}
		mean, err := s.Mean()
		if err != nil {
			return Point{}, 0, err
		}
		qObs, err := s.Quantile(cfg.Quantile)
		if err != nil {
			return Point{}, 0, err
		}
		return Point{MeanWait: mean, Quantile: qObs}, float64(messages) / elapsed.Seconds(), nil
	}

	// Zero-load baseline over the clean transport: at a few percent
	// utilization the M/G/1 wait is negligible, so the measured mean is
	// the constant dispatch-latency floor, calibrated out of the loaded
	// observation below.
	baseMsgs := cfg.Messages / 4
	baseline, _, err := phase(pubBase, lambda/5, baseMsgs, baseMsgs/10)
	if err != nil {
		return BrokerResult{}, err
	}

	loaded, achieved, err := phase(pub, lambda, cfg.Messages, cfg.Warmup)
	if err != nil {
		return BrokerResult{}, err
	}

	// Predict at the achieved rate: transport faults and send-path
	// backpressure throttle arrivals below the target lambda, and the
	// model must be asked about the load the broker actually saw.
	moments := mg1.ServiceMoments{M1: eb, M2: eb * eb, M3: eb * eb * eb}
	q, err := mg1.NewQueue(achieved, moments)
	if err != nil {
		return BrokerResult{}, fmt.Errorf("conformance: achieved rate %g unstable: %w", achieved, err)
	}
	dist, err := q.GammaApprox()
	if err != nil {
		return BrokerResult{}, err
	}
	qPred, err := dist.Quantile(cfg.Quantile)
	if err != nil {
		return BrokerResult{}, err
	}

	return BrokerResult{
		Observed: Point{
			MeanWait: loaded.MeanWait - baseline.MeanWait,
			Quantile: loaded.Quantile - baseline.MeanWait,
		},
		Baseline:       baseline,
		Predicted:      Point{MeanWait: q.MeanWait(), Quantile: qPred},
		MeanService:    eb,
		Lambda:         achieved,
		Rho:            q.Rho(),
		Waits:          cfg.Messages - cfg.Warmup,
		Resets:         fn.Stats().Resets,
		Reconnects:     reg.Counter(client.MetricReconnects).Value(),
		PublishRetries: reg.Counter(client.MetricPublishRetries).Value(),
		Duplicates:     srv.DuplicatesSuppressed(),
	}, nil
}

// publishPoisson drives a Poisson arrival schedule with absolute
// deadlines through a pool of senders, so one publish delayed by a
// fault or a slow RPC does not push back every later arrival. Returns
// the wall-clock span of the schedule.
func publishPoisson(ctx context.Context, pub *client.Reliable, topicName string, rng *stats.RNG, lambda float64, messages, publishers int) (time.Duration, error) {
	deadlines := make([]time.Duration, messages)
	var at float64
	for i := range deadlines {
		at += rng.Exp(lambda)
		deadlines[i] = time.Duration(at * float64(time.Second))
	}
	var (
		wg      sync.WaitGroup
		pubErr  error
		pubOnce sync.Once
		due     = make(chan struct{}, messages)
	)
	start := time.Now()
	// Pacer: release each arrival at its absolute deadline. Absolute
	// deadlines make sleep overshoot a per-arrival displacement instead
	// of a cumulative drift, and independently displacing the points of
	// a Poisson process leaves it Poisson. Spinning out the timer
	// granularity instead would be more precise but monopolizes a core,
	// which on small CI machines starves the very system under test.
	go func() {
		defer close(due)
		for i := 0; i < messages; i++ {
			if d := time.Until(start.Add(deadlines[i])); d > 0 {
				time.Sleep(d)
			}
			due <- struct{}{}
		}
	}()
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range due {
				m := jms.NewMessage(topicName)
				if err := m.SetCorrelationID("#0"); err != nil {
					pubOnce.Do(func() { pubErr = err })
					return
				}
				if err := pub.Publish(ctx, m); err != nil {
					pubOnce.Do(func() { pubErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if pubErr != nil {
		return 0, fmt.Errorf("conformance: publish: %w", pubErr)
	}
	return time.Since(start), nil
}
