//go:build race

package conformance

// raceEnabled reports whether the race detector is compiled in. The
// broker leg calibrates E[B] and then loads the broker at a target
// utilization derived from it; race instrumentation slows the dispatch
// path by an order of magnitude, pushing the actual utilization past 1
// and blowing up the very waiting times under test, so the wall-clock
// leg is skipped under -race. (Race coverage of the reliability layer
// itself lives in the client, faultnet and cluster test suites, which
// assert delivery, not timing.)
const raceEnabled = true
