// Package conformance cross-checks the three implementations of the
// paper's waiting-time model against each other: the closed-form M/G/1-∞
// analysis (internal/mg1, Eqs. 4–5 and 19–20), the Lindley-recursion
// simulator (internal/sim), and the live broker served over a
// fault-injecting transport (internal/faultnet). Each leg produces the
// same two statistics — E[W] and a high quantile of the waiting time —
// so disagreements localize a defect to one layer: analytics vs
// simulation isolates the formulas, simulation vs broker isolates the
// implementation.
package conformance

import (
	"fmt"
	"math"

	"repro/internal/mg1"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterizes one analytic/simulated comparison: an M/G/1-∞
// queue with service B = D + R·t_tx (Eq. 1's split into a constant and a
// replication-scaled part).
type Config struct {
	// D is the constant service part t_rcv + n_fltr·t_fltr in seconds.
	D float64
	// TTx is the per-replica transmit time in seconds.
	TTx float64
	// R is the replication-grade distribution.
	R replication.Distribution
	// Rho is the target utilization; the arrival rate is Rho/E[B].
	Rho float64
	// Customers is the number of simulated messages. Default 200000.
	Customers int
	// Warmup messages are excluded from simulation statistics.
	// Default Customers/20.
	Warmup int
	// Seed fixes the simulation RNG.
	Seed int64
	// Quantile is the compared tail quantile. Default 0.99.
	Quantile float64
}

func (c Config) withDefaults() Config {
	if c.Customers <= 0 {
		c.Customers = 200000
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Customers / 20
	}
	if c.Quantile <= 0 {
		c.Quantile = 0.99
	}
	return c
}

// Point is one leg's result: the mean wait and the configured quantile,
// both in seconds.
type Point struct {
	MeanWait float64
	Quantile float64
}

// Analytic evaluates the closed forms: Pollaczek–Khinchine for E[W] and
// the Gamma approximation (Eqs. 19–20) for the quantile.
func Analytic(cfg Config) (Point, error) {
	cfg = cfg.withDefaults()
	b, err := mg1.MomentsFromReplication(cfg.D, cfg.TTx, cfg.R)
	if err != nil {
		return Point{}, err
	}
	q, err := mg1.QueueAtUtilization(cfg.Rho, b)
	if err != nil {
		return Point{}, err
	}
	dist, err := q.GammaApprox()
	if err != nil {
		return Point{}, err
	}
	qt, err := dist.Quantile(cfg.Quantile)
	if err != nil {
		return Point{}, err
	}
	return Point{MeanWait: q.MeanWait(), Quantile: qt}, nil
}

// Simulated runs the Lindley-recursion M/G/1 simulator with per-message
// replication grades drawn from cfg.R and returns the empirical point.
func Simulated(cfg Config) (Point, error) {
	cfg = cfg.withDefaults()
	b, err := mg1.MomentsFromReplication(cfg.D, cfg.TTx, cfg.R)
	if err != nil {
		return Point{}, err
	}
	res, err := sim.SimulateMG1(sim.MG1Config{
		Lambda: cfg.Rho / b.M1,
		Service: func(rng *stats.RNG) float64 {
			return cfg.D + float64(cfg.R.Sample(rng))*cfg.TTx
		},
		Customers: cfg.Customers,
		Warmup:    cfg.Warmup,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return Point{}, err
	}
	mean, err := res.Waits.Mean()
	if err != nil {
		return Point{}, err
	}
	qt, err := res.Waits.Quantile(cfg.Quantile)
	if err != nil {
		return Point{}, err
	}
	return Point{MeanWait: mean, Quantile: qt}, nil
}

// CheckAgreement compares two legs' points. Each statistic must agree
// within relTol relative error (of the larger magnitude) plus an absTol
// absolute floor that keeps near-zero statistics from demanding
// impossible precision.
func CheckAgreement(a, b Point, relTol, absTol float64) error {
	if err := agree("mean wait", a.MeanWait, b.MeanWait, relTol, absTol); err != nil {
		return err
	}
	return agree("quantile", a.Quantile, b.Quantile, relTol, absTol)
}

func agree(what string, x, y, relTol, absTol float64) error {
	if math.IsNaN(x) || math.IsNaN(y) {
		return fmt.Errorf("conformance: %s is NaN (%g vs %g)", what, x, y)
	}
	limit := absTol + relTol*math.Max(math.Abs(x), math.Abs(y))
	if diff := math.Abs(x - y); diff > limit {
		return fmt.Errorf("conformance: %s disagrees: %.6g vs %.6g (diff %.3g > %.3g)",
			what, x, y, diff, limit)
	}
	return nil
}
