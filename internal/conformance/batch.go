package conformance

import (
	"repro/internal/mg1"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file extends the conformance suite to batched arrivals: the same
// service-time model B = D + R·t_tx, but messages now arrive in Poisson
// batches whose sizes follow a configured law X. The analytic leg is the
// M^X/G/1-∞ extension (internal/mg1's BatchQueue); the simulated leg is
// the batch-level Lindley recursion (internal/sim's SimulateMXG1). The
// live-broker batched path is pinned separately: the broker package's
// metamorphic test proves batched publishes dispatch the exact same
// per-subscriber sequences as individual ones, so the per-message broker
// leg here transfers to batches by construction.

// BatchConfig parameterizes one batched analytic/simulated comparison.
type BatchConfig struct {
	// D is the constant service part t_rcv + n_fltr·t_fltr in seconds.
	D float64
	// TTx is the per-replica transmit time in seconds.
	TTx float64
	// R is the replication-grade distribution.
	R replication.Distribution
	// X is the batch-size law (its Moments feed the analytic leg, its
	// Sample the simulated one).
	X mg1.BatchDist
	// Rho is the target utilization; the batch-arrival rate is
	// Rho/(E[X]·E[B]).
	Rho float64
	// Customers is the number of simulated messages. Default 200000.
	Customers int
	// Warmup messages are excluded from simulation statistics.
	// Default Customers/20.
	Warmup int
	// Seed fixes the simulation RNG.
	Seed int64
	// Quantile is the compared tail quantile. Default 0.99.
	Quantile float64
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.Customers <= 0 {
		c.Customers = 200000
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Customers / 20
	}
	if c.Quantile <= 0 {
		c.Quantile = 0.99
	}
	return c
}

// batchQueue builds the M^X/G/1 queue shared by both legs.
func batchQueue(cfg BatchConfig) (mg1.BatchQueue, error) {
	b, err := mg1.MomentsFromReplication(cfg.D, cfg.TTx, cfg.R)
	if err != nil {
		return mg1.BatchQueue{}, err
	}
	return mg1.BatchQueueAtUtilization(cfg.Rho, cfg.X.Moments(), b)
}

// AnalyticBatch evaluates the M^X/G/1 closed forms: the batch
// Pollaczek–Khinchine mean wait and the Gamma approximation of the
// waiting-time distribution for the quantile.
func AnalyticBatch(cfg BatchConfig) (Point, error) {
	cfg = cfg.withDefaults()
	q, err := batchQueue(cfg)
	if err != nil {
		return Point{}, err
	}
	dist, err := q.GammaApprox()
	if err != nil {
		return Point{}, err
	}
	qt, err := dist.Quantile(cfg.Quantile)
	if err != nil {
		return Point{}, err
	}
	return Point{MeanWait: q.MeanWait(), Quantile: qt}, nil
}

// SimulatedBatch runs the batch-level Lindley simulator with batch sizes
// drawn from cfg.X and per-message replication grades drawn from cfg.R,
// and returns the empirical point.
func SimulatedBatch(cfg BatchConfig) (Point, error) {
	cfg = cfg.withDefaults()
	q, err := batchQueue(cfg)
	if err != nil {
		return Point{}, err
	}
	res, err := sim.SimulateMXG1(sim.MXG1Config{
		LambdaB: q.LambdaB,
		Batch:   cfg.X.Sample,
		Service: func(rng *stats.RNG) float64 {
			return cfg.D + float64(cfg.R.Sample(rng))*cfg.TTx
		},
		Customers: cfg.Customers,
		Warmup:    cfg.Warmup,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return Point{}, err
	}
	mean, err := res.Waits.Mean()
	if err != nil {
		return Point{}, err
	}
	qt, err := res.Waits.Quantile(cfg.Quantile)
	if err != nil {
		return Point{}, err
	}
	return Point{MeanWait: mean, Quantile: qt}, nil
}
