package conformance

// This file is the fourth conformance leg: a live multi-broker
// replication mesh checked against the paper's distributed closed forms.
//
// The analytic side is Eqs. 21–23 (internal/distrib): PSRCapacity,
// SSRCapacity and the crossover rule. The measured side is a real
// cluster.Topology — n in-process brokers wired as PSR (filters mirrored
// everywhere, each message matched once at its ingress member) or SSR
// (publishes flooded, each member matching only its local filters).
//
// All members share one machine, so the leg cannot read system capacity
// off wall-clock parallel throughput: n brokers saturating one CPU would
// measure the scheduler, not the architecture. Instead the leg drives a
// modest paced load and *implies* capacity from each member's measured
// mean service time E[B_i] (the brokers' per-topic ServiceMoments
// telemetry, the same instrument Table I's stage times come from):
//
//	PSR: capacity = n * rho / E[B]   (Eq. 21, per-member E[B] averaged)
//	SSR: capacity = rho / max_i E[B_i]  (Eq. 22, every member sees the
//	     full stream, so the slowest member bounds the system)
//
// against the same formulas evaluated on a stage-time cost model
// calibrated once on a single broker (bench.MeasureScenario with
// StageTiming). The crossover check then compares implied PSR and SSR
// capacities in configurations chosen so Eq. 23 predicts opposite
// winners.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/stats"
)

// meshTopic is the single topic the mesh leg publishes on.
const meshTopic = "mesh"

// MeshConfig parameterizes one live replication-mesh leg.
type MeshConfig struct {
	// Kind is the replication architecture: cluster.TopologyPSR or
	// cluster.TopologySSR. (Hash partitioning has no Eq. 21/22 analogue
	// in the paper; its capacity model is covered by distrib.HashCapacity
	// unit tests and the topology metamorphic suite.)
	Kind cluster.TopologyKind
	// Members is the broker count — the paper's n. Default 3.
	Members int
	// M is the modeled subscriber count whose filters burden every PSR
	// member. Default 2.
	M int
	// NFltrPerSub is the per-subscriber filter count. Default 600.
	NFltrPerSub int
	// R is the number of matching subscribers per matching site — the
	// deterministic replication grade E[R]. Default 2.
	R int
	// Rho is the utilization bound the capacity formulas are evaluated
	// at. Default 0.9.
	Rho float64
	// LoadRho is the per-member utilization the load phase actually
	// drives. It stays well below Rho: the members share one machine, so
	// the combined dispatch load of all brokers plus the pacer must
	// remain schedulable or the measured service times degenerate into
	// scheduler noise. Default 0.15.
	LoadRho float64
	// Messages is the loaded-phase message count. Default 1200.
	Messages int
	// Warmup drops the first loaded-phase wait observations. Default
	// Messages/10.
	Warmup int
	// Publishers is the sender-pool size of the Poisson pacer. Default 4.
	Publishers int
	// SingleOrigin funnels every publish through member 0 instead of
	// rotating origins. Under PSR this loads exactly one member while the
	// others contribute only their mirrored filter burden — the
	// configuration for waiting-time checks, which need one member at a
	// meaningful utilization without multiplying the machine-wide load by
	// n.
	SingleOrigin bool
	// Seed drives the Poisson schedule.
	Seed int64
	// Model is the pre-calibrated stage-time cost model. Zero value →
	// calibrated here via CalibrateMeshModel(Calibration, ...). Legs that
	// share a model (capacity vs crossover) calibrate once and inject it.
	Model core.CostModel
	// Calibration configures the stage-time measurement when Model is
	// zero.
	Calibration bench.NativeConfig
}

func (c MeshConfig) withDefaults() MeshConfig {
	if c.Members <= 0 {
		c.Members = 3
	}
	if c.M <= 0 {
		c.M = 2
	}
	if c.NFltrPerSub <= 0 {
		c.NFltrPerSub = 600
	}
	if c.R <= 0 {
		c.R = 2
	}
	if c.Rho <= 0 {
		c.Rho = 0.9
	}
	if c.LoadRho <= 0 {
		c.LoadRho = 0.15
	}
	if c.Messages <= 0 {
		c.Messages = 1200
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Messages / 10
	}
	if c.Publishers <= 0 {
		c.Publishers = 4
	}
	return c
}

// MeshResult is the outcome of one live replication-mesh leg.
type MeshResult struct {
	// Model is the stage-time cost model the predictions used.
	Model core.CostModel
	// Scenario is the distrib scenario built from the config and model.
	Scenario distrib.Scenario
	// PredictedCapacity is Eq. 21 (PSR) or Eq. 22 (SSR) on the model.
	PredictedCapacity float64
	// ImpliedCapacity is the same formula evaluated on the measured
	// per-member service times.
	ImpliedCapacity float64
	// MemberService holds the measured loaded-phase E[B_i] in seconds for
	// the members that serviced messages (all of them, except PSR with
	// SingleOrigin where only member 0 receives).
	MemberService []float64
	// MemberLambda holds the matching measured per-member arrival rates.
	MemberLambda []float64
	// Lambda is the achieved system arrival rate (messages per second of
	// schedule span).
	Lambda float64
	// ObservedWait is the baseline-subtracted pooled mean waiting time of
	// the loaded phase; BaselineWait is the zero-load dispatch floor that
	// was subtracted.
	ObservedWait, BaselineWait float64
	// PredictedWait is the M/G/1 mean wait at the measured per-member
	// rates (weighted across members by messages serviced).
	PredictedWait float64
	// Forwards counts cross-member copies (SSR flood clones; 0 for PSR).
	Forwards uint64
}

// CheckCapacity compares implied against predicted system capacity.
func (r MeshResult) CheckCapacity(relTol float64) error {
	return agree("mesh capacity", r.ImpliedCapacity, r.PredictedCapacity, relTol, 0)
}

// CalibrateMeshModel measures the broker's stage-time cost model on a
// single broker: cal is run with StageTiming forced on, nFltr installed
// filters and replication grade r, and the measured per-stage times
// become the CostModel both capacity formulas are evaluated with.
func CalibrateMeshModel(cal bench.NativeConfig, nFltr, r int) (core.CostModel, error) {
	cal.StageTiming = true
	res, err := bench.MeasureScenario(cal, nFltr, r)
	if err != nil {
		return core.CostModel{}, fmt.Errorf("conformance: mesh calibration: %w", err)
	}
	if res.Stages == nil {
		return core.CostModel{}, fmt.Errorf("conformance: mesh calibration returned no stage times")
	}
	return core.CostModel{TRcv: res.Stages.TRcv, TFltr: res.Stages.TFltr, TTx: res.Stages.TTx}, nil
}

// CalibrateMeshModelPaced builds the cost model from paced single-member
// reference runs instead of a saturated throughput run. The saturated
// bench keeps the dispatch loop hot back to back, which under-measures
// the per-filter cost a paced server pays (cold micro-architectural
// state on every wake-up); a mesh leg driven at a low utilization would
// then read systematically slower than the model. So the per-filter cost
// is fitted as the slope of mean service time over the given filter
// burdens, each measured on one live member under the same Poisson
// pacing the mesh legs use; the fitted intercept (receive plus
// replication, a percent-level term at these burdens) is split into
// TRcv and TTx by the saturated stage-time ratio. The linear fit also
// re-checks the model's core premise — service time linear in the
// installed filter count — across the whole burden range the legs span.
func CalibrateMeshModelPaced(cal bench.NativeConfig, burdens []int, r int, loadRho float64, messages int, seed int64) (core.CostModel, error) {
	if len(burdens) < 2 {
		return core.CostModel{}, fmt.Errorf("conformance: paced calibration needs >= 2 burdens")
	}
	if loadRho <= 0 || loadRho >= 1 {
		return core.CostModel{}, fmt.Errorf("conformance: paced calibration loadRho=%g", loadRho)
	}
	if messages <= 0 {
		messages = 500
	}
	sat, err := CalibrateMeshModel(cal, burdens[len(burdens)/2], r)
	if err != nil {
		return core.CostModel{}, err
	}
	satBase := sat.TRcv + float64(r)*sat.TTx

	var sx, sy, sxx, sxy float64
	for i, burden := range burdens {
		lambda := loadRho / (satBase + float64(burden)*sat.TFltr)
		eb, err := measurePacedServiceTime(burden, r, lambda, messages, seed+int64(i))
		if err != nil {
			return core.CostModel{}, err
		}
		x := float64(burden)
		sx += x
		sy += eb
		sxx += x * x
		sxy += x * eb
	}
	n := float64(len(burdens))
	den := n*sxx - sx*sx
	slope := (n*sxy - sx*sy) / den
	if slope <= 0 {
		return core.CostModel{}, fmt.Errorf("conformance: paced calibration fitted t_fltr=%g", slope)
	}
	intercept := (sy - slope*sx) / n
	if intercept <= 0 {
		// The intercept is a percent-level term at these burdens; when
		// measurement noise pushes the fit through zero, fall back to
		// the saturated fixed costs.
		intercept = satBase
	}
	return core.CostModel{
		TRcv:  intercept * sat.TRcv / satBase,
		TFltr: slope,
		TTx:   intercept * sat.TTx / satBase,
	}, nil
}

// measurePacedServiceTime measures the mean service time of one live
// member carrying the given filter burden under a paced Poisson load —
// a 1-member PSR topology driven exactly like the mesh legs.
func measurePacedServiceTime(burden, r int, lambda float64, messages int, seed int64) (float64, error) {
	topo, err := cluster.NewTopology(cluster.TopologyConfig{
		Kind:    cluster.TopologyPSR,
		Members: 1,
		Topics:  []string{meshTopic},
		Broker: broker.Options{
			InFlight:         256,
			SubscriberBuffer: 16,
		},
	})
	if err != nil {
		return 0, err
	}
	defer func() { _ = topo.Close() }()
	brokers := topo.Brokers()
	cfg := MeshConfig{Kind: cluster.TopologyPSR, M: 1, NFltrPerSub: burden, R: r}
	if err := installMeshFilters(cfg, topo, brokers); err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	before := meshTelemetry(brokers)
	if _, err := publishPoissonMesh(ctx, topo, stats.NewRNG(seed), lambda, messages, 4, 1, false); err != nil {
		return 0, err
	}
	if err := settleMesh(brokers); err != nil {
		return 0, err
	}
	d := meshTelemetry(brokers)[0].Sub(before[0])
	if d.ServiceMoments.N == 0 {
		return 0, fmt.Errorf("conformance: paced reference measured no service times")
	}
	return d.ServiceMoments.Mean(), nil
}

// RunMesh runs one live replication-mesh conformance leg.
func RunMesh(cfg MeshConfig) (MeshResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Kind != cluster.TopologyPSR && cfg.Kind != cluster.TopologySSR {
		return MeshResult{}, fmt.Errorf("conformance: mesh leg supports psr and ssr, not %v", cfg.Kind)
	}

	// Per-member filter burden: all m subscribers' filters under PSR, one
	// modeled subscriber's under SSR.
	filtersPerMember := cfg.M * cfg.NFltrPerSub
	if cfg.Kind == cluster.TopologySSR {
		filtersPerMember = cfg.NFltrPerSub
	}

	model := cfg.Model
	if model == (core.CostModel{}) {
		// Calibrate at this leg's own filter burden: the measured
		// per-filter cost drifts with the subscriber list's cache
		// footprint, so a model calibrated at a very different burden
		// systematically mispredicts E[B] (the same reason the
		// single-broker leg calibrates at its own NFltr).
		var err error
		model, err = CalibrateMeshModel(cfg.Calibration, filtersPerMember, cfg.R)
		if err != nil {
			return MeshResult{}, err
		}
	}
	scenario := distrib.Scenario{
		Model:       model,
		N:           cfg.Members,
		M:           cfg.M,
		NFltrPerSub: cfg.NFltrPerSub,
		MeanR:       float64(cfg.R),
		Rho:         cfg.Rho,
	}
	var (
		predicted float64
		err       error
	)
	if cfg.Kind == cluster.TopologyPSR {
		predicted, err = distrib.PSRCapacity(scenario)
	} else {
		predicted, err = distrib.SSRCapacity(scenario)
	}
	if err != nil {
		return MeshResult{}, err
	}

	// One pooled wait observer across members. The members are symmetric
	// by construction (identical filter burden, near-identical rates), so
	// the pooled stream estimates the common waiting-time distribution.
	var (
		waitMu sync.Mutex
		waits  []float64
	)
	topo, err := cluster.NewTopology(cluster.TopologyConfig{
		Kind:    cfg.Kind,
		Members: cfg.Members,
		Topics:  []string{meshTopic},
		Broker: broker.Options{
			InFlight: 256,
			// Small per-subscriber buffers: the legs install tens of
			// thousands of never-matching subscriptions per mesh, and the
			// few matching ones are drained promptly.
			SubscriberBuffer: 16,
			WaitObserver: func(w time.Duration) {
				waitMu.Lock()
				waits = append(waits, w.Seconds())
				waitMu.Unlock()
			},
		},
	})
	if err != nil {
		return MeshResult{}, err
	}
	defer func() { _ = topo.Close() }()
	brokers := topo.Brokers()

	// Filter populations, placed exactly as the architecture prescribes.
	// The non-matching filters never receive, so they are installed on
	// the member brokers directly and need no drain goroutines; only the
	// matching subscribers go through the topology layer.
	if err := installMeshFilters(cfg, topo, brokers); err != nil {
		return MeshResult{}, err
	}

	// Per-member service rate the load is paced against.
	ebModel := model.TRcv + float64(filtersPerMember)*model.TFltr + float64(cfg.R)*model.TTx
	perMemberLambda := cfg.LoadRho / ebModel
	systemLambda := perMemberLambda
	if cfg.Kind == cluster.TopologyPSR && !cfg.SingleOrigin {
		systemLambda = perMemberLambda * float64(cfg.Members)
	}
	// Every accepted message is serviced exactly once under PSR (at its
	// ingress member) and once per member under SSR.
	waitsPerMessage := 1
	if cfg.Kind == cluster.TopologySSR {
		waitsPerMessage = cfg.Members
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rng := stats.NewRNG(cfg.Seed)

	phase := func(lambda float64, messages, warmup int) (meanWait float64, elapsed time.Duration, err error) {
		waitMu.Lock()
		before := len(waits)
		waitMu.Unlock()
		elapsed, err = publishPoissonMesh(ctx, topo, rng, lambda, messages, cfg.Publishers, cfg.Members, cfg.SingleOrigin)
		if err != nil {
			return 0, 0, err
		}
		expected := before + messages*waitsPerMessage
		deadline := time.Now().Add(30 * time.Second)
		for {
			waitMu.Lock()
			n := len(waits)
			waitMu.Unlock()
			if n >= expected {
				break
			}
			if time.Now().After(deadline) {
				return 0, 0, fmt.Errorf("conformance: mesh dispatched %d of %d messages", n-before, expected-before)
			}
			time.Sleep(5 * time.Millisecond)
		}
		s := stats.NewSummary()
		waitMu.Lock()
		for _, w := range waits[before+warmup*waitsPerMessage:] {
			s.Add(w)
		}
		waitMu.Unlock()
		meanWait, err = s.Mean()
		if err != nil {
			return 0, 0, err
		}
		return meanWait, elapsed, nil
	}

	// Zero-load baseline: the measured mean at a few percent utilization
	// is the dispatch-latency floor, subtracted from the loaded mean.
	baseMsgs := cfg.Messages / 4
	baseline, _, err := phase(systemLambda/5, baseMsgs, baseMsgs/10)
	if err != nil {
		return MeshResult{}, err
	}
	if err := settleMesh(brokers); err != nil {
		return MeshResult{}, err
	}

	beforeTel := meshTelemetry(brokers)
	loadedWait, elapsed, err := phase(systemLambda, cfg.Messages, cfg.Warmup)
	if err != nil {
		return MeshResult{}, err
	}
	if err := settleMesh(brokers); err != nil {
		return MeshResult{}, err
	}
	afterTel := meshTelemetry(brokers)

	// Per-member loaded-phase deltas: measured E[B_i] and arrival rates.
	var (
		ebs, lambdas []float64
		weights      []float64
	)
	for i := range brokers {
		d := afterTel[i].Sub(beforeTel[i])
		if d.ServiceMoments.N == 0 {
			continue
		}
		ebs = append(ebs, d.ServiceMoments.Mean())
		lambdas = append(lambdas, float64(d.Received)/elapsed.Seconds())
		weights = append(weights, float64(d.Received))
	}
	if len(ebs) == 0 {
		return MeshResult{}, fmt.Errorf("conformance: mesh measured no service times")
	}

	implied, err := implyMeshCapacity(cfg, ebs)
	if err != nil {
		return MeshResult{}, err
	}
	predWait, err := meshPredictedWait(cfg.Kind, scenario, lambdas, weights)
	if err != nil {
		return MeshResult{}, err
	}

	return MeshResult{
		Model:             model,
		Scenario:          scenario,
		PredictedCapacity: predicted,
		ImpliedCapacity:   implied,
		MemberService:     ebs,
		MemberLambda:      lambdas,
		Lambda:            float64(cfg.Messages) / elapsed.Seconds(),
		ObservedWait:      loadedWait - baseline,
		BaselineWait:      baseline,
		PredictedWait:     predWait,
		Forwards:          topo.Stats().Forwards,
	}, nil
}

// installMeshFilters builds the architecture's filter placement: under
// PSR every member carries all M*NFltrPerSub non-matching filters plus R
// mirrored matching subscribers; under SSR each member carries one
// modeled subscriber's NFltrPerSub filters plus its own R matching
// subscribers (so each member delivers E[R] replicas of the flooded
// stream, as Eq. 22's service time assumes).
func installMeshFilters(cfg MeshConfig, topo *cluster.Topology, brokers []*broker.Broker) error {
	nonMatching := func(b *broker.Broker, count, offset int) error {
		for i := 0; i < count; i++ {
			f, err := filter.NewCorrelationID(fmt.Sprintf("#%d", offset+i+1))
			if err != nil {
				return err
			}
			if _, err := b.Subscribe(meshTopic, f); err != nil {
				return err
			}
		}
		return nil
	}
	matching := func(home int) error {
		f, err := filter.NewCorrelationID("#0")
		if err != nil {
			return err
		}
		sub, err := topo.Subscribe(meshTopic, f, home)
		if err != nil {
			return err
		}
		go func() {
			for range sub.Chan() {
			}
		}()
		return nil
	}
	switch cfg.Kind {
	case cluster.TopologyPSR:
		for _, b := range brokers {
			if err := nonMatching(b, cfg.M*cfg.NFltrPerSub, 0); err != nil {
				return err
			}
		}
		for i := 0; i < cfg.R; i++ {
			if err := matching(i); err != nil {
				return err
			}
		}
	case cluster.TopologySSR:
		for mi, b := range brokers {
			if err := nonMatching(b, cfg.NFltrPerSub, mi*cfg.NFltrPerSub); err != nil {
				return err
			}
			for i := 0; i < cfg.R; i++ {
				if err := matching(mi); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// implyMeshCapacity evaluates the architecture's capacity formula on the
// measured per-member service times.
func implyMeshCapacity(cfg MeshConfig, ebs []float64) (float64, error) {
	switch cfg.Kind {
	case cluster.TopologyPSR:
		// Eq. 21 on measurements: n times the mean measured per-server
		// capacity. With SingleOrigin only member 0 is measured, but the
		// members carry identical mirrored filter loads, so its E[B]
		// stands in for all n.
		var perServer float64
		for _, eb := range ebs {
			if eb <= 0 {
				return 0, fmt.Errorf("conformance: mesh measured E[B]=%g", eb)
			}
			perServer += cfg.Rho / eb
		}
		perServer /= float64(len(ebs))
		return float64(cfg.Members) * perServer, nil
	default:
		// Eq. 22 on measurements: every member sees the full stream, so
		// the slowest member bounds the system.
		max := 0.0
		for _, eb := range ebs {
			max = math.Max(max, eb)
		}
		if max <= 0 {
			return 0, fmt.Errorf("conformance: mesh measured E[B]=%g", max)
		}
		return cfg.Rho / max, nil
	}
}

// meshPredictedWait pools the per-member M/G/1 mean waits at the
// measured per-member rates, weighted by messages serviced.
func meshPredictedWait(kind cluster.TopologyKind, s distrib.Scenario, lambdas, weights []float64) (float64, error) {
	var sum, total float64
	for i, lambda := range lambdas {
		if lambda <= 0 {
			continue
		}
		var (
			mean float64
			err  error
		)
		if kind == cluster.TopologyPSR {
			mean, _, err = distrib.PSRWaitingAtRate(s, lambda)
		} else {
			mean, _, err = distrib.SSRWaitingAtRate(s, lambda)
		}
		if err != nil {
			return 0, err
		}
		sum += weights[i] * mean
		total += weights[i]
	}
	if total == 0 {
		return 0, fmt.Errorf("conformance: mesh measured no arrivals")
	}
	return sum / total, nil
}

// meshTelemetry snapshots every member's telemetry for the mesh topic.
func meshTelemetry(brokers []*broker.Broker) []broker.TopicTelemetry {
	out := make([]broker.TopicTelemetry, len(brokers))
	for i, b := range brokers {
		out[i] = b.Telemetry()[meshTopic]
	}
	return out
}

// settleMesh waits until every member has serviced every message it
// accepted, so phase boundaries do not bleed queued work into the next
// window's telemetry delta.
func settleMesh(brokers []*broker.Broker) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		settled := true
		for _, b := range brokers {
			tel := b.Telemetry()[meshTopic]
			if tel.ServiceMoments.N < tel.Received {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("conformance: mesh members did not settle")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// publishPoissonMesh drives a Poisson schedule with absolute deadlines
// through the topology, rotating the publisher origin across members
// (or pinning it to member 0 with singleOrigin). Same pacer discipline
// as publishPoisson: absolute deadlines turn sleep overshoot into
// per-arrival displacement rather than cumulative drift.
func publishPoissonMesh(ctx context.Context, topo *cluster.Topology, rng *stats.RNG, lambda float64, messages, publishers, members int, singleOrigin bool) (time.Duration, error) {
	deadlines := make([]time.Duration, messages)
	var at float64
	for i := range deadlines {
		at += rng.Exp(lambda)
		deadlines[i] = time.Duration(at * float64(time.Second))
	}
	var (
		wg      sync.WaitGroup
		pubErr  error
		pubOnce sync.Once
		due     = make(chan int, messages)
	)
	start := time.Now()
	go func() {
		defer close(due)
		for i := 0; i < messages; i++ {
			if d := time.Until(start.Add(deadlines[i])); d > 0 {
				time.Sleep(d)
			}
			due <- i
		}
	}()
	for w := 0; w < publishers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range due {
				origin := i % members
				if singleOrigin {
					origin = 0
				}
				m := jms.NewMessage(meshTopic)
				if err := m.SetCorrelationID("#0"); err != nil {
					pubOnce.Do(func() { pubErr = err })
					return
				}
				if err := topo.Publish(ctx, origin, m); err != nil {
					pubOnce.Do(func() { pubErr = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	if pubErr != nil {
		return 0, fmt.Errorf("conformance: mesh publish: %w", pubErr)
	}
	return time.Since(start), nil
}
