package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pair returns a wrapped server-side conn and a raw client-side conn
// over loopback TCP.
func pair(t *testing.T, n *Network) (server net.Conn, client net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := n.Wrap(ln)
	t.Cleanup(func() { _ = wrapped.Close() })

	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := wrapped.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { _ = r.c.Close() })
	return r.c, client
}

func TestTransparentByDefault(t *testing.T) {
	n := New(Config{Seed: 1})
	server, client := pair(t, n)
	msg := []byte("hello over a zero-fault network")
	go func() { _, _ = server.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if s := n.Stats(); s.Resets != 0 || s.CorruptedWrites != 0 {
		t.Fatalf("zero-fault network injected faults: %+v", s)
	}
}

func TestLatency(t *testing.T) {
	n := New(Config{Seed: 1, Latency: 20 * time.Millisecond})
	server, client := pair(t, n)
	start := time.Now()
	go func() { _, _ = server.Write([]byte("x")) }()
	got := make([]byte, 1)
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("write arrived after %v, want >= ~20ms of injected latency", el)
	}
}

func TestCorruption(t *testing.T) {
	n := New(Config{Seed: 7, CorruptProb: 1})
	server, client := pair(t, n)
	msg := bytes.Repeat([]byte{0x00}, 64)
	orig := append([]byte(nil), msg...)
	go func() { _, _ = server.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("CorruptProb=1 write arrived uncorrupted")
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("corruption modified the caller's buffer")
	}
	if s := n.Stats(); s.CorruptedWrites == 0 {
		t.Fatal("corrupted write not counted")
	}
}

func TestResetAfterBytes(t *testing.T) {
	n := New(Config{Seed: 1, ResetAfterBytes: 10})
	server, client := pair(t, n)
	if _, err := server.Write(make([]byte, 4)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	nn, err := server.Write(make([]byte, 32))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("budget-exceeding write: n=%d err=%v, want ErrInjectedReset", nn, err)
	}
	if nn >= 32 {
		t.Fatalf("budget-exceeding write reported full length %d", nn)
	}
	// The client eventually observes the cut.
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	total := 0
	for {
		k, err := client.Read(buf)
		total += k
		if err != nil {
			break
		}
	}
	if total >= 4+32 {
		t.Fatalf("client received %d bytes across an injected reset", total)
	}
	if s := n.Stats(); s.Resets != 1 {
		t.Fatalf("resets = %d, want 1", s.Resets)
	}
}

func TestResetProb(t *testing.T) {
	n := New(Config{Seed: 3, ResetProb: 1})
	server, _ := pair(t, n)
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want ErrInjectedReset", err)
	}
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write after reset: err = %v, want ErrInjectedReset", err)
	}
}

func TestKillAll(t *testing.T) {
	n := New(Config{Seed: 1})
	server, client := pair(t, n)
	if got := n.NumConns(); got != 1 {
		t.Fatalf("NumConns = %d, want 1", got)
	}
	if killed := n.KillAll(); killed != 1 {
		t.Fatalf("KillAll = %d, want 1", killed)
	}
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("write after KillAll: %v, want ErrInjectedReset", err)
	}
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("client read succeeded across KillAll")
	}
	if got := n.NumConns(); got != 0 {
		t.Fatalf("NumConns after KillAll = %d, want 0", got)
	}
}

func TestPartition(t *testing.T) {
	n := New(Config{Seed: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := n.Wrap(ln)
	defer wrapped.Close()

	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := wrapped.Accept()
			if err != nil {
				close(accepted)
				return
			}
			accepted <- c
		}
	}()

	n.Partition(true)
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// The partitioned acceptor closes the conn at once: the dialler's
	// read fails instead of blocking.
	_ = c1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c1.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded through a partition")
	}
	_ = c1.Close()

	n.Partition(false)
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	select {
	case sc := <-accepted:
		defer sc.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("no accept after the partition healed")
	}
	if s := n.Stats(); s.Refused == 0 || s.Accepted == 0 {
		t.Fatalf("stats = %+v, want refused and accepted both counted", s)
	}
}

func TestBandwidthCap(t *testing.T) {
	// 10 KiB at 100 KiB/s should take ~100ms.
	n := New(Config{Seed: 1, BandwidthBps: 100 * 1024})
	server, client := pair(t, n)
	go func() { _, _ = io.Copy(io.Discard, client) }()
	start := time.Now()
	if _, err := server.Write(make([]byte, 10*1024)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("10KiB at 100KiB/s finished in %v, want >= ~100ms", el)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// Same seed, same sequence of corruption decisions.
	run := func(seed int64) []bool {
		n := New(Config{Seed: seed, CorruptProb: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, n.roll() < 0.5)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d with equal seeds", i)
		}
	}
}
