// Package faultnet wraps net.Conn and net.Listener with seeded,
// schedulable faults: added latency, bandwidth caps, byte corruption,
// mid-frame connection resets, and accept-time partitions. It is the
// chaos harness the reliability layer (client.Reliable, cluster bridges)
// is tested against: the paper's M/G/1-∞ analysis assumes a transport
// that never drops or stalls, and faultnet is how we deviate from that
// assumption on purpose, deterministically.
//
// All randomness flows from one seeded RNG shared by every connection of
// a Network, so a chaos run is reproducible from its Config.Seed.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedReset is returned from Read/Write on a connection that
// faultnet reset (budget exhausted, reset probability fired, or KillAll).
var ErrInjectedReset = errors.New("faultnet: injected connection reset")

// Config describes the fault schedule of a Network. The zero value
// injects nothing and adds no delay — a transparent wrapper.
type Config struct {
	// Seed initialises the shared RNG; same seed, same fault schedule.
	Seed int64
	// Latency is added to every Write before bytes reach the inner
	// connection (a one-way propagation delay on the wrapped endpoint).
	Latency time.Duration
	// LatencyJitter adds a uniform random extra delay in [0, Jitter).
	LatencyJitter time.Duration
	// BandwidthBps caps the write throughput in bytes per second by
	// stalling after each write for the time the bytes "occupy the
	// link". 0 means unlimited.
	BandwidthBps int64
	// CorruptProb is the per-Write probability that one random byte of
	// the outgoing buffer is flipped (in a copy; the caller's buffer is
	// never modified).
	CorruptProb float64
	// ResetProb is the per-Write probability that the connection is
	// reset before the write happens.
	ResetProb float64
	// ResetAfterBytes resets each connection after it has written this
	// many bytes, cutting the final frame mid-write. 0 disables.
	ResetAfterBytes int64
}

// Stats counts the faults a Network has injected so far.
type Stats struct {
	// Accepted is the number of connections the wrapped listener
	// admitted (partition-refused ones excluded).
	Accepted uint64
	// Refused counts connections accepted by the inner listener but
	// immediately closed because the network was partitioned.
	Refused uint64
	// Resets counts injected resets (probability, byte budget, KillAll).
	Resets uint64
	// CorruptedWrites counts writes that had a byte flipped.
	CorruptedWrites uint64
}

// Network is a fault domain: a shared RNG, a partition switch, and the
// set of live wrapped connections (so KillAll can cut them all).
type Network struct {
	cfg Config

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned bool
	conns       map[*Conn]struct{}
	stats       Stats
}

// New creates a Network with the given fault schedule.
func New(cfg Config) *Network {
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		conns: make(map[*Conn]struct{}),
	}
}

// Wrap returns a listener whose accepted connections carry the
// Network's faults. While the network is partitioned, accepted
// connections are closed immediately — the accept-time partition.
func (n *Network) Wrap(ln net.Listener) net.Listener {
	return &Listener{Listener: ln, n: n}
}

// WrapConn wraps a single, already-established connection (the
// client-side counterpart to Wrap).
func (n *Network) WrapConn(c net.Conn) *Conn {
	fc := &Conn{Conn: c, n: n, budget: n.cfg.ResetAfterBytes}
	n.mu.Lock()
	n.conns[fc] = struct{}{}
	n.mu.Unlock()
	return fc
}

// Partition opens (true) or heals (false) the accept-time partition.
func (n *Network) Partition(on bool) {
	n.mu.Lock()
	n.partitioned = on
	n.mu.Unlock()
}

// Partitioned reports whether the accept-time partition is open.
func (n *Network) Partitioned() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned
}

// KillAll resets every live wrapped connection and returns how many it
// cut. New connections are unaffected (heal by redialling).
func (n *Network) KillAll() int {
	n.mu.Lock()
	live := make([]*Conn, 0, len(n.conns))
	for c := range n.conns {
		live = append(live, c)
	}
	n.mu.Unlock()
	for _, c := range live {
		c.reset()
	}
	return len(live)
}

// NumConns reports the number of live wrapped connections.
func (n *Network) NumConns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// Stats returns a snapshot of the injected-fault counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

func (n *Network) forget(c *Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// roll draws a uniform [0,1) variate from the shared RNG.
func (n *Network) roll() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rng.Float64()
}

// jitter draws the per-write added latency.
func (n *Network) jitter() time.Duration {
	d := n.cfg.Latency
	if n.cfg.LatencyJitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.LatencyJitter)))
		n.mu.Unlock()
	}
	return d
}

// Listener wraps an inner listener; see Network.Wrap.
type Listener struct {
	net.Listener
	n *Network
}

// Accept waits for the next connection. Connections arriving during a
// partition are closed immediately and the wait continues, so the
// dialler observes a connection that dies at once, like a SYN admitted
// by a dying peer.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.n.mu.Lock()
		if l.n.partitioned {
			l.n.stats.Refused++
			l.n.mu.Unlock()
			_ = c.Close()
			continue
		}
		l.n.stats.Accepted++
		l.n.mu.Unlock()
		return l.n.WrapConn(c), nil
	}
}

// Conn is a net.Conn carrying a Network's faults on its write path.
type Conn struct {
	net.Conn
	n *Network

	// budget is the remaining write bytes before an injected reset;
	// 0 or negative at construction means unlimited.
	budget int64

	once   sync.Once
	killed bool // guarded by n.mu
}

// reset closes the inner connection and marks the cut as injected, so
// subsequent Read/Write report ErrInjectedReset instead of the inner
// error.
func (c *Conn) reset() {
	c.n.mu.Lock()
	c.killed = true
	c.n.stats.Resets++
	c.n.mu.Unlock()
	c.close()
}

func (c *Conn) close() {
	c.once.Do(func() {
		c.n.forget(c)
		_ = c.Conn.Close()
	})
}

// Close closes the connection (a clean close, not an injected fault).
func (c *Conn) Close() error {
	c.close()
	return nil
}

func (c *Conn) wasKilled() bool {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	return c.killed
}

// Read reads from the inner connection; after an injected reset it
// reports ErrInjectedReset so callers can classify the failure.
func (c *Conn) Read(p []byte) (int, error) {
	nn, err := c.Conn.Read(p)
	if err != nil && c.wasKilled() {
		err = ErrInjectedReset
	}
	return nn, err
}

// Write applies the fault schedule: latency, probabilistic reset, byte
// budget (mid-frame cut), corruption, then the bandwidth stall.
func (c *Conn) Write(p []byte) (int, error) {
	cfg := &c.n.cfg
	if d := c.n.jitter(); d > 0 {
		time.Sleep(d)
	}
	if c.wasKilled() {
		return 0, ErrInjectedReset
	}
	if cfg.ResetProb > 0 && c.n.roll() < cfg.ResetProb {
		c.reset()
		return 0, ErrInjectedReset
	}
	// Byte budget: write the prefix that fits, then cut — a mid-frame
	// reset from the reader's point of view.
	if c.budget > 0 {
		if int64(len(p)) >= c.budget {
			prefix := p[:int(c.budget)-1]
			if len(prefix) > 0 {
				_, _ = c.Conn.Write(prefix)
			}
			c.reset()
			return len(prefix), ErrInjectedReset
		}
		c.budget -= int64(len(p))
	}
	buf := p
	if cfg.CorruptProb > 0 && len(p) > 0 && c.n.roll() < cfg.CorruptProb {
		buf = make([]byte, len(p))
		copy(buf, p)
		c.n.mu.Lock()
		buf[c.n.rng.Intn(len(buf))] ^= 0xFF
		c.n.stats.CorruptedWrites++
		c.n.mu.Unlock()
	}
	nn, err := c.Conn.Write(buf)
	if err != nil && c.wasKilled() {
		err = ErrInjectedReset
	}
	if cfg.BandwidthBps > 0 && nn > 0 {
		time.Sleep(time.Duration(int64(nn) * int64(time.Second) / cfg.BandwidthBps))
	}
	return nn, err
}
