package replication

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// enumMoments computes exact moments of a distribution over a finite
// support by enumeration, as an independent oracle.
func binomialMomentsExact(n int, p float64) (m1, m2, m3 float64) {
	// P(R=k) = C(n,k) p^k (1-p)^(n-k), computed iteratively.
	pk := math.Pow(1-p, float64(n)) // k = 0
	for k := 0; k <= n; k++ {
		if k > 0 {
			pk *= float64(n-k+1) / float64(k) * p / (1 - p)
		}
		kf := float64(k)
		m1 += pk * kf
		m2 += pk * kf * kf
		m3 += pk * kf * kf * kf
	}
	return m1, m2, m3
}

func TestDeterministicMoments(t *testing.T) {
	d, err := NewDeterministic(7)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 7 || d.Moment2() != 49 || d.Moment3() != 343 {
		t.Errorf("moments = %g %g %g", d.Mean(), d.Moment2(), d.Moment3())
	}
	if CVar(d) != 0 {
		t.Errorf("CVar = %g, want 0 (Eq. 11-12: deterministic has no variance)", CVar(d))
	}
	if d.Sample(stats.NewRNG(1)) != 7 {
		t.Error("Sample != 7")
	}
	if _, err := NewDeterministic(-1); !errors.Is(err, ErrParams) {
		t.Errorf("negative r err = %v", err)
	}
	if d.String() == "" {
		t.Error("empty String")
	}
}

func TestScaledBernoulliMoments(t *testing.T) {
	const n = 40
	const p = 0.3
	d, err := NewScaledBernoulli(n, p)
	if err != nil {
		t.Fatal(err)
	}
	// E[R^k] = p * n^k.
	if got, want := d.Mean(), p*n; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	if got, want := d.Moment2(), p*n*n; math.Abs(got-want) > 1e-12 {
		t.Errorf("Moment2 = %g, want %g", got, want)
	}
	if got, want := d.Moment3(), p*n*n*n; math.Abs(got-want) > 1e-9 {
		t.Errorf("Moment3 = %g, want %g", got, want)
	}
	// Eq. 15: E[R^3] = E[R^2]^2 / E[R].
	if got, want := d.Moment3(), d.Moment2()*d.Moment2()/d.Mean(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Eq.15 violated: %g vs %g", got, want)
	}
}

func TestScaledBernoulliFromMoments(t *testing.T) {
	orig, err := NewScaledBernoulli(40, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Recover parameters from the first two moments (the paper's
	// "vice-versa" identities).
	rec, err := ScaledBernoulliFromMoments(orig.Mean(), orig.Moment2())
	if err != nil {
		t.Fatal(err)
	}
	n, p := rec.Params()
	if n != 40 || math.Abs(p-0.3) > 1e-12 {
		t.Errorf("recovered (n=%d, p=%g), want (40, 0.3)", n, p)
	}
	if _, err := ScaledBernoulliFromMoments(0, 1); !errors.Is(err, ErrParams) {
		t.Errorf("zero mean err = %v", err)
	}
	// Moments implying p > 1 (mean^2 > moment2) are invalid.
	if _, err := ScaledBernoulliFromMoments(10, 50); !errors.Is(err, ErrParams) {
		t.Errorf("p>1 moments err = %v", err)
	}
}

func TestScaledBernoulliSampleMoments(t *testing.T) {
	d, err := NewScaledBernoulli(20, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(7)
	const samples = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		k := float64(d.Sample(g))
		if k != 0 && k != 20 {
			t.Fatalf("scaled Bernoulli sample %g not in {0, 20}", k)
		}
		sum += k
		sumSq += k * k
	}
	if mean := sum / samples; math.Abs(mean-d.Mean()) > 0.1 {
		t.Errorf("sample mean = %g, want %g", mean, d.Mean())
	}
	if m2 := sumSq / samples; math.Abs(m2-d.Moment2())/d.Moment2() > 0.02 {
		t.Errorf("sample m2 = %g, want %g", m2, d.Moment2())
	}
}

func TestBinomialMomentsAgainstEnumeration(t *testing.T) {
	cases := []struct {
		n int
		p float64
	}{
		{n: 1, p: 0.5},
		{n: 5, p: 0.1},
		{n: 40, p: 0.3},
		{n: 160, p: 0.9},
		{n: 100, p: 0.01},
	}
	for _, tc := range cases {
		d, err := NewBinomial(tc.n, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		m1, m2, m3 := binomialMomentsExact(tc.n, tc.p)
		if !close(d.Mean(), m1) {
			t.Errorf("n=%d p=%g: Mean = %g, enum %g", tc.n, tc.p, d.Mean(), m1)
		}
		if !close(d.Moment2(), m2) {
			t.Errorf("n=%d p=%g: Moment2 = %g, enum %g", tc.n, tc.p, d.Moment2(), m2)
		}
		if !close(d.Moment3(), m3) {
			t.Errorf("n=%d p=%g: Moment3 = %g, enum %g", tc.n, tc.p, d.Moment3(), m3)
		}
	}
}

func close(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-9*math.Max(scale, 1)
}

// TestBinomialMomentsQuick cross-checks the closed forms against
// enumeration for random parameters.
func TestBinomialMomentsQuick(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw%60) + 1
		p := float64(pRaw%1000) / 1000
		d, err := NewBinomial(n, p)
		if err != nil {
			return false
		}
		m1, m2, m3 := binomialMomentsExact(n, p)
		return close(d.Mean(), m1) && close(d.Moment2(), m2) && close(d.Moment3(), m3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialDegenerateCases(t *testing.T) {
	// p=1 behaves deterministically: all filters match.
	d, err := NewBinomial(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() != 10 || d.Moment2() != 100 || d.Moment3() != 1000 {
		t.Errorf("p=1 moments = %g %g %g", d.Mean(), d.Moment2(), d.Moment3())
	}
	if CVar(d) != 0 {
		t.Errorf("p=1 CVar = %g", CVar(d))
	}
	// p=0: nothing ever matches.
	d0, err := NewBinomial(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Mean() != 0 || d0.Moment2() != 0 || d0.Moment3() != 0 {
		t.Error("p=0 moments non-zero")
	}
	if CVar(d0) != 0 {
		t.Error("p=0 CVar should be 0 by convention")
	}
}

func TestInvalidParams(t *testing.T) {
	if _, err := NewScaledBernoulli(-1, 0.5); !errors.Is(err, ErrParams) {
		t.Error("negative n accepted")
	}
	if _, err := NewScaledBernoulli(5, 1.5); !errors.Is(err, ErrParams) {
		t.Error("p > 1 accepted")
	}
	if _, err := NewBinomial(5, -0.1); !errors.Is(err, ErrParams) {
		t.Error("negative p accepted")
	}
	if _, err := NewBinomial(-2, 0.5); !errors.Is(err, ErrParams) {
		t.Error("negative n accepted")
	}
}

func TestVarianceComparison(t *testing.T) {
	// For the same mean, scaled Bernoulli has (much) higher variance than
	// binomial — the reason the paper's Fig. 8 curves exceed Fig. 9's.
	sb, err := NewScaledBernoulli(40, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := NewBinomial(40, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Mean() != bin.Mean() {
		t.Fatalf("means differ: %g vs %g", sb.Mean(), bin.Mean())
	}
	if Variance(sb) <= Variance(bin) {
		t.Errorf("Var(scaledBernoulli)=%g should exceed Var(binomial)=%g",
			Variance(sb), Variance(bin))
	}
}

func TestBinomialSampleMoments(t *testing.T) {
	d, err := NewBinomial(40, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(11)
	const samples = 100000
	sum := 0.0
	for i := 0; i < samples; i++ {
		k := d.Sample(g)
		if k < 0 || k > 40 {
			t.Fatalf("sample %d out of range", k)
		}
		sum += float64(k)
	}
	if mean := sum / samples; math.Abs(mean-12) > 0.1 {
		t.Errorf("sample mean = %g, want 12", mean)
	}
}
