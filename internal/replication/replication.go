// Package replication models the message replication grade R — the number
// of subscribers a message is forwarded to. Its distribution drives the
// variability of the message service time and thereby the waiting time
// (Section IV-B.2 of the paper). Three models are provided, as in the
// paper:
//
//   - Deterministic: R is a constant r (Eqs. 11–12).
//   - Scaled Bernoulli: with probability p_match the message matches all
//     n_fltr filters, otherwise none (Eqs. 13–15).
//   - Binomial: the n_fltr filters match independently with probability
//     p_match (Eqs. 16–18).
package replication

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// ErrParams is returned for invalid distribution parameters.
var ErrParams = errors.New("replication: invalid parameters")

// Distribution is a model of the replication grade R providing its first
// three raw moments and a sampler for simulation.
type Distribution interface {
	// Mean returns E[R].
	Mean() float64
	// Moment2 returns E[R^2].
	Moment2() float64
	// Moment3 returns E[R^3].
	Moment3() float64
	// Sample draws one replication grade.
	Sample(rng *stats.RNG) int
	// String names the model with its parameters.
	String() string
}

// Deterministic is a constant replication grade (Eqs. 11–12). "This model
// is very static and probably not appropriate to characterize real world
// scenarios", but it is the zero-variability baseline of the study.
type Deterministic struct {
	r float64
}

var _ Distribution = Deterministic{}

// NewDeterministic returns the constant model R = r.
func NewDeterministic(r float64) (Deterministic, error) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return Deterministic{}, fmt.Errorf("%w: deterministic r=%g", ErrParams, r)
	}
	return Deterministic{r: r}, nil
}

// Mean returns r.
func (d Deterministic) Mean() float64 { return d.r }

// Moment2 returns r^2.
func (d Deterministic) Moment2() float64 { return d.r * d.r }

// Moment3 returns r^3.
func (d Deterministic) Moment3() float64 { return d.r * d.r * d.r }

// Sample returns r rounded to the nearest integer.
func (d Deterministic) Sample(*stats.RNG) int { return int(math.Round(d.r)) }

// String names the model.
func (d Deterministic) String() string { return fmt.Sprintf("Deterministic(r=%g)", d.r) }

// ScaledBernoulli is the all-or-nothing model: R = n_fltr with probability
// p_match, else 0. Raw moments: E[R^k] = p_match * n_fltr^k, so
// E[R^3] = E[R^2]^2 / E[R] (Eq. 15).
type ScaledBernoulli struct {
	n int
	p float64
}

var _ Distribution = ScaledBernoulli{}

// NewScaledBernoulli returns the scaled Bernoulli model for n filters and
// match probability p.
func NewScaledBernoulli(n int, p float64) (ScaledBernoulli, error) {
	if n < 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return ScaledBernoulli{}, fmt.Errorf("%w: scaled Bernoulli n=%d p=%g", ErrParams, n, p)
	}
	return ScaledBernoulli{n: n, p: p}, nil
}

// ScaledBernoulliFromMoments recovers (n_fltr, p_match) from the first two
// moments: n_fltr = E[R^2]/E[R] and p_match = E[R]^2/E[R^2].
func ScaledBernoulliFromMoments(mean, moment2 float64) (ScaledBernoulli, error) {
	if mean <= 0 || moment2 <= 0 {
		return ScaledBernoulli{}, fmt.Errorf("%w: moments %g, %g", ErrParams, mean, moment2)
	}
	n := moment2 / mean
	p := mean * mean / moment2
	if p > 1 {
		return ScaledBernoulli{}, fmt.Errorf("%w: moments imply p=%g > 1", ErrParams, p)
	}
	return ScaledBernoulli{n: int(math.Round(n)), p: p}, nil
}

// Mean returns p*n (Eq. 13).
func (d ScaledBernoulli) Mean() float64 { return d.p * float64(d.n) }

// Moment2 returns p*n^2 (Eq. 14).
func (d ScaledBernoulli) Moment2() float64 { return d.p * float64(d.n) * float64(d.n) }

// Moment3 returns p*n^3, equivalently E[R^2]^2/E[R] (Eq. 15).
func (d ScaledBernoulli) Moment3() float64 {
	return d.p * float64(d.n) * float64(d.n) * float64(d.n)
}

// Sample returns n with probability p, else 0.
func (d ScaledBernoulli) Sample(rng *stats.RNG) int {
	if rng.Bernoulli(d.p) {
		return d.n
	}
	return 0
}

// String names the model.
func (d ScaledBernoulli) String() string {
	return fmt.Sprintf("ScaledBernoulli(n=%d, p=%g)", d.n, d.p)
}

// Params returns (n_fltr, p_match).
func (d ScaledBernoulli) Params() (int, float64) { return d.n, d.p }

// Binomial models n_fltr independent filters each matching with
// probability p_match (Eq. 16).
type Binomial struct {
	n int
	p float64
}

var _ Distribution = Binomial{}

// NewBinomial returns the binomial model for n filters and match
// probability p.
func NewBinomial(n int, p float64) (Binomial, error) {
	if n < 0 || p < 0 || p > 1 || math.IsNaN(p) {
		return Binomial{}, fmt.Errorf("%w: binomial n=%d p=%g", ErrParams, n, p)
	}
	return Binomial{n: n, p: p}, nil
}

// Mean returns n*p.
func (d Binomial) Mean() float64 { return float64(d.n) * d.p }

// Moment2 returns the second raw moment n*p*(1-p) + (n*p)^2 (variance plus
// squared mean, Eq. 17).
func (d Binomial) Moment2() float64 {
	mean := d.Mean()
	return float64(d.n)*d.p*(1-d.p) + mean*mean
}

// Moment3 returns the third raw moment of Binomial(n, p):
//
//	E[R^3] = np(1-3p+2p^2) + 3(np)^2(1-p) + (np)^3
//
// (Eq. 18 of the paper in raw-moment form).
func (d Binomial) Moment3() float64 {
	np := d.Mean()
	p := d.p
	return np*(1-3*p+2*p*p) + 3*np*np*(1-p) + np*np*np
}

// Sample draws a Binomial(n, p) replication grade.
func (d Binomial) Sample(rng *stats.RNG) int { return rng.Binomial(d.n, d.p) }

// String names the model.
func (d Binomial) String() string { return fmt.Sprintf("Binomial(n=%d, p=%g)", d.n, d.p) }

// Params returns (n_fltr, p_match).
func (d Binomial) Params() (int, float64) { return d.n, d.p }

// Variance returns E[R^2] - E[R]^2 for any distribution.
func Variance(d Distribution) float64 {
	m := d.Mean()
	return d.Moment2() - m*m
}

// CVar returns the coefficient of variation of R, or 0 for a zero mean.
func CVar(d Distribution) float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	v := Variance(d)
	if v < 0 {
		v = 0 // guard tiny negative from floating point
	}
	return math.Sqrt(v) / m
}
