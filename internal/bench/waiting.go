package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/filter"
	"repro/internal/stats"
)

// WaitingResult is the outcome of a native waiting-time experiment: the
// broker's observed waits under Poisson load, next to the M/D/1 reference
// computed from the broker's own measured service time.
type WaitingResult struct {
	// MeanServiceTime is the saturation-measured E[B] of the scenario.
	MeanServiceTime float64
	// OfferedRho is the target utilization of the Poisson run.
	OfferedRho float64
	// Waits are the observed waiting times in seconds.
	Waits *stats.Summary
	// PredictedMeanWait is the M/D/1 Pollaczek–Khinchine mean
	// rho*E[B]/(2(1-rho)) using the measured E[B] (the native broker's
	// service time is nearly deterministic for fixed n_fltr and R).
	PredictedMeanWait float64
	// IdealDuration is messages/lambda — how long the Poisson source
	// should have taken. ActualDuration is the wall-clock it did take;
	// a large ratio means the pacer was starved (noisy machine) and the
	// observed waits are not comparable to the analysis.
	IdealDuration, ActualDuration time.Duration
}

// MeasureNativeWaiting runs the X3 experiment: calibrate E[B] by a
// saturated run, then offer Poisson traffic at utilization rho and record
// each message's waiting time via the broker's WaitObserver.
func MeasureNativeWaiting(cfg NativeConfig, n, r int, rho float64, messages int) (WaitingResult, error) {
	cfg = cfg.withDefaults()
	if rho <= 0 || rho >= 1 {
		return WaitingResult{}, fmt.Errorf("%w: rho=%g", ErrBench, rho)
	}
	if messages < 100 {
		return WaitingResult{}, fmt.Errorf("%w: messages=%d", ErrBench, messages)
	}

	// Phase 1: saturated calibration of E[B].
	sat, err := MeasureScenario(cfg, n, r)
	if err != nil {
		return WaitingResult{}, err
	}
	meanB := sat.MeanServiceTime
	lambda := rho / meanB

	// Phase 2: Poisson offered load at rate lambda with wait recording.
	waits := stats.NewSummary()
	var waitsMu sync.Mutex
	b := broker.New(broker.Options{
		InFlight:         cfg.InFlight,
		SubscriberBuffer: cfg.SubscriberBuffer,
		WaitObserver: func(w time.Duration) {
			waitsMu.Lock()
			waits.Add(w.Seconds())
			waitsMu.Unlock()
		},
	})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("bench"); err != nil {
		return WaitingResult{}, err
	}
	var drainWG sync.WaitGroup
	subscribeAll := func(build func(i int) (filter.Filter, error)) error {
		for i := 0; i < n+r; i++ {
			f, err := build(i)
			if err != nil {
				return err
			}
			s, err := b.Subscribe("bench", f)
			if err != nil {
				return err
			}
			drainWG.Add(1)
			go func() {
				defer drainWG.Done()
				for range s.Chan() {
				}
			}()
		}
		return nil
	}
	if err := subscribeAll(func(i int) (filter.Filter, error) {
		if i < r {
			return matchingFilter(cfg.FilterType)
		}
		return nonMatchingFilter(cfg.FilterType, i-r, cfg.NonMatchingIdentical)
	}); err != nil {
		return WaitingResult{}, err
	}

	template, err := benchMessage(cfg.FilterType, "bench")
	if err != nil {
		return WaitingResult{}, err
	}
	rng := stats.NewRNG(42)
	ctx := context.Background()
	loadStart := time.Now()
	next := loadStart
	for i := 0; i < messages; i++ {
		next = next.Add(time.Duration(rng.Exp(lambda) * float64(time.Second)))
		// Hybrid pacing: coarse kernel timers oversleep sub-millisecond
		// waits badly, so sleep only for the bulk and spin the rest.
		for {
			remain := time.Until(next)
			if remain <= 0 {
				break
			}
			if remain > 2*time.Millisecond {
				time.Sleep(remain - 2*time.Millisecond)
			} else {
				runtime.Gosched()
			}
		}
		m := template.Clone()
		if err := b.Publish(ctx, m); err != nil {
			return WaitingResult{}, err
		}
	}
	actual := time.Since(loadStart)
	// Let the dispatcher drain before closing.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		waitsMu.Lock()
		n := waits.N()
		waitsMu.Unlock()
		if n >= messages {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := b.Close(); err != nil {
		return WaitingResult{}, err
	}
	drainWG.Wait()

	return WaitingResult{
		MeanServiceTime:   meanB,
		OfferedRho:        rho,
		Waits:             waits,
		PredictedMeanWait: rho * meanB / (2 * (1 - rho)),
		IdealDuration:     time.Duration(float64(messages) / lambda * float64(time.Second)),
		ActualDuration:    actual,
	}, nil
}
