package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/jms"
)

// BodySizePoint is one measured (body size, throughput) pair.
type BodySizePoint struct {
	BodyBytes    int
	ReceivedRate float64
}

// MeasureBodySizeImpact reproduces the §III-B observation that "the
// message size has a significant impact on the message throughput": it
// saturates the broker with one match-all subscriber and varying body
// sizes. The dominant native cost is the per-replica body copy (Clone) and
// the larger allocations.
func MeasureBodySizeImpact(cfg NativeConfig, sizes []int) ([]BodySizePoint, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{0, 1 << 10, 16 << 10, 128 << 10}
	}
	points := make([]BodySizePoint, 0, len(sizes))
	for _, size := range sizes {
		if size < 0 {
			return nil, fmt.Errorf("%w: body size %d", ErrBench, size)
		}
		rate, err := measureBodySize(cfg, size)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", size, err)
		}
		points = append(points, BodySizePoint{BodyBytes: size, ReceivedRate: rate})
	}
	return points, nil
}

func measureBodySize(cfg NativeConfig, size int) (float64, error) {
	b := broker.New(broker.Options{
		InFlight:         cfg.InFlight,
		SubscriberBuffer: cfg.SubscriberBuffer,
	})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("t"); err != nil {
		return 0, err
	}
	// Two subscribers force a Clone per dispatch, so the body copy cost
	// is on the measured path.
	var drainWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		s, err := b.Subscribe("t", nil)
		if err != nil {
			return 0, err
		}
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for range s.Chan() {
			}
		}()
	}

	template := jms.NewMessage("t")
	template.Body = make([]byte, size)

	ctx, cancel := context.WithCancel(context.Background())
	var pubWG sync.WaitGroup
	for p := 0; p < cfg.Publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for ctx.Err() == nil {
				if err := b.Publish(ctx, template.Clone()); err != nil {
					return
				}
			}
		}()
	}

	time.Sleep(cfg.Warmup)
	startStats := b.Stats()
	start := time.Now()
	time.Sleep(cfg.Measure)
	endStats := b.Stats()
	elapsed := time.Since(start).Seconds()

	cancel()
	pubWG.Wait()
	if err := b.Close(); err != nil {
		return 0, err
	}
	drainWG.Wait()

	if elapsed <= 0 {
		return 0, fmt.Errorf("%w: empty window", ErrBench)
	}
	return float64(endStats.Received-startStats.Received) / elapsed, nil
}
