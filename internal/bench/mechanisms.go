package bench

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/jms"
)

// MechanismResult compares the three message selection mechanisms of the
// paper for the same logical workload: topic selection (subscribers are
// pre-partitioned onto topics, the server does no per-message filter
// work), correlation-ID filtering and application-property filtering.
// §III-B: "the message throughput suffers the least from topic filtering,
// followed by correlation ID filtering and application property
// filtering".
type MechanismResult struct {
	// TopicRate, CorrIDRate and AppPropRate are received msgs/s at
	// saturation for the same workload (1 interested subscriber among
	// n+1, R=1).
	TopicRate   float64
	CorrIDRate  float64
	AppPropRate float64
}

// CompareMechanisms measures the three mechanisms natively. n is the
// number of uninterested subscribers.
func CompareMechanisms(cfg NativeConfig, n int) (MechanismResult, error) {
	cfg = cfg.withDefaults()
	if n < 0 {
		return MechanismResult{}, fmt.Errorf("%w: n=%d", ErrBench, n)
	}
	var res MechanismResult

	// Topic selection: the n uninterested subscribers sit on their own
	// topics, so the loaded topic has a single match-all subscriber and
	// zero filter scans beyond it.
	topicRate, err := measureTopicSelection(cfg, n)
	if err != nil {
		return MechanismResult{}, fmt.Errorf("topic selection: %w", err)
	}
	res.TopicRate = topicRate

	corrCfg := cfg
	corrCfg.FilterType = core.CorrelationIDFiltering
	corr, err := MeasureScenario(corrCfg, n, 1)
	if err != nil {
		return MechanismResult{}, fmt.Errorf("correlation ID: %w", err)
	}
	res.CorrIDRate = corr.ReceivedRate

	appCfg := cfg
	appCfg.FilterType = core.ApplicationPropertyFiltering
	app, err := MeasureScenario(appCfg, n, 1)
	if err != nil {
		return MechanismResult{}, fmt.Errorf("application property: %w", err)
	}
	res.AppPropRate = app.ReceivedRate
	return res, nil
}

// measureTopicSelection saturates a topic that has exactly one match-all
// subscriber while n other subscribers live on separate topics.
func measureTopicSelection(cfg NativeConfig, n int) (float64, error) {
	b := broker.New(broker.Options{
		InFlight:         cfg.InFlight,
		SubscriberBuffer: cfg.SubscriberBuffer,
	})
	defer func() { _ = b.Close() }()

	if err := b.ConfigureTopic("hot"); err != nil {
		return 0, err
	}
	var drainWG sync.WaitGroup
	drain := func(s *broker.Subscriber) {
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for range s.Chan() {
			}
		}()
	}
	hot, err := b.Subscribe("hot", filter.All{})
	if err != nil {
		return 0, err
	}
	drain(hot)
	for i := 0; i < n; i++ {
		name := "cold" + strconv.Itoa(i)
		if err := b.ConfigureTopic(name); err != nil {
			return 0, err
		}
		s, err := b.Subscribe(name, filter.All{})
		if err != nil {
			return 0, err
		}
		drain(s)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var pubWG sync.WaitGroup
	for p := 0; p < cfg.Publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for ctx.Err() == nil {
				if err := b.Publish(ctx, jms.NewMessage("hot")); err != nil {
					return
				}
			}
		}()
	}

	time.Sleep(cfg.Warmup)
	startStats := b.Stats()
	start := time.Now()
	time.Sleep(cfg.Measure)
	endStats := b.Stats()
	elapsed := time.Since(start).Seconds()

	cancel()
	pubWG.Wait()
	if err := b.Close(); err != nil {
		return 0, err
	}
	drainWG.Wait()

	if elapsed <= 0 {
		return 0, fmt.Errorf("%w: empty window", ErrBench)
	}
	return float64(endStats.Received-startStats.Received) / elapsed, nil
}
