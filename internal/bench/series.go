// Package bench is the experiment harness of the reproduction: it
// regenerates every data table and figure of the paper's evaluation, either
// from the calibrated cost model (the paper's Table I constants driving the
// virtual-time simulator) or from native measurements of this repository's
// own broker (the jmsbench path that re-derives Table I on the local
// machine).
package bench

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ErrBench is returned for invalid harness parameters.
var ErrBench = errors.New("bench: invalid parameters")

// Series is one plottable data series: named columns and numeric rows, the
// unit every figure generator produces.
type Series struct {
	// Name identifies the series (e.g. "R=5" or "corrID E[R]=10").
	Name string
	// Cols are the column headers; Cols[0] is the x axis.
	Cols []string
	// Rows are the data points.
	Rows [][]float64
}

// Append adds a row, which must match the column count.
func (s *Series) Append(row ...float64) error {
	if len(row) != len(s.Cols) {
		return fmt.Errorf("%w: row width %d, want %d", ErrBench, len(row), len(s.Cols))
	}
	s.Rows = append(s.Rows, row)
	return nil
}

// WriteCSV writes the series as CSV with a comment header naming it.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", s.Name); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Join(s.Cols, ",")); err != nil {
		return err
	}
	for _, row := range s.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = strconv.FormatFloat(v, 'g', 8, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the series as an aligned text table.
func (s *Series) String() string {
	var sb strings.Builder
	sb.WriteString("# " + s.Name + "\n")
	const colWidth = 14
	for _, c := range s.Cols {
		fmt.Fprintf(&sb, "%*s", colWidth, c)
	}
	sb.WriteByte('\n')
	for _, row := range s.Rows {
		for _, v := range row {
			fmt.Fprintf(&sb, "%*s", colWidth, strconv.FormatFloat(v, 'g', 6, 64))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WriteAll writes several series to w, blank-line separated.
func WriteAll(w io.Writer, series []Series) error {
	for i := range series {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := series[i].WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// LogSpaceInts returns a roughly log-spaced set of integers in [lo, hi],
// deduplicated and ascending — the x axes of the paper's log-log figures.
func LogSpaceInts(lo, hi, pointsPerDecade int) ([]int, error) {
	if lo < 1 || hi < lo || pointsPerDecade < 1 {
		return nil, fmt.Errorf("%w: LogSpaceInts(%d, %d, %d)", ErrBench, lo, hi, pointsPerDecade)
	}
	var out []int
	seen := make(map[int]struct{})
	x := float64(lo)
	factor := math.Pow(10, 1.0/float64(pointsPerDecade))
	for x <= float64(hi)*1.0000001 {
		v := int(x + 0.5)
		if v > hi {
			break
		}
		if _, dup := seen[v]; !dup {
			seen[v] = struct{}{}
			out = append(out, v)
		}
		x *= factor
	}
	if len(out) == 0 || out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out, nil
}
