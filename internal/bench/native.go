package bench

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/fit"
	"repro/internal/jms"
	"repro/internal/metrics"
)

// NativeConfig parameterizes a native measurement run against this
// repository's real broker, following the paper's methodology: saturated
// publishers, a warm-up cut, a trimmed observation window, and counters at
// the publishers/subscribers.
type NativeConfig struct {
	// FilterType selects correlation-ID or application-property filters.
	FilterType core.FilterType
	// Publishers is the number of saturated publisher goroutines; the
	// paper found at least 5 are needed to load the server.
	Publishers int
	// Warmup is the initial interval excluded from measurement.
	Warmup time.Duration
	// Measure is the trimmed observation window.
	Measure time.Duration
	// NonMatchingIdentical makes all n non-matching filters identical
	// (all filtering for the same value) instead of pairwise different —
	// the Section III-B experiment that showed FioranoMQ gains nothing
	// from identical filters.
	NonMatchingIdentical bool
	// Repetitions repeats each scenario and keeps the median rates,
	// mirroring the paper's repeated runs. Default 1.
	Repetitions int
	// InFlight and SubscriberBuffer tune the broker. The defaults are
	// sized so that the dispatch loop — not a full subscriber queue — is
	// the bottleneck, as required by the E[B] = 1/throughput reading.
	InFlight, SubscriberBuffer int
	// Engine selects the broker dispatch implementation. The default
	// (EngineFaithful) is required for all paper reproductions; EngineFast
	// measures the optimized dispatch path instead.
	Engine broker.Engine
	// Shards is the fast engine's per-topic worker count (0 = default).
	Shards int
	// Batch coalesces the publish path: each publisher call sends Batch
	// cloned messages through Broker.PublishBatch as one arrival unit
	// (one in-flight slot per batch). 0 or 1 publishes per message.
	Batch int
	// StageTiming additionally records per-stage dispatch times on the
	// broker and reports measured t_rcv/t_fltr/t_tx per scenario (the
	// Stages field of NativeResult). The clock reads perturb absolute
	// throughput slightly, so leave it off for pure Table I runs.
	StageTiming bool
}

func (c NativeConfig) withDefaults() NativeConfig {
	if c.Publishers <= 0 {
		c.Publishers = 5
	}
	if c.Warmup <= 0 {
		c.Warmup = 50 * time.Millisecond
	}
	if c.Measure <= 0 {
		c.Measure = 200 * time.Millisecond
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 1
	}
	if c.InFlight <= 0 {
		c.InFlight = 256
	}
	if c.SubscriberBuffer <= 0 {
		c.SubscriberBuffer = 1 << 14
	}
	return c
}

// NativeResult is one measured data point.
type NativeResult struct {
	// NFltr is the total number of installed filters (n + R).
	NFltr int
	// R is the replication grade of the scenario.
	R int
	// ReceivedRate, DispatchedRate and OverallRate are msgs/s within the
	// trimmed window.
	ReceivedRate   float64
	DispatchedRate float64
	OverallRate    float64
	// MeanServiceTime is 1/ReceivedRate, the per-message processing time
	// at saturation.
	MeanServiceTime float64
	// Stages holds the per-stage Eq. 1 components measured inside the
	// dispatch pipeline during the same trimmed window; nil unless
	// NativeConfig.StageTiming was set.
	Stages *StageTimes
}

// StageTimes are the Eq. 1 cost components measured directly by the
// broker's per-stage instrumentation (seconds), the quantities Table I
// recovers indirectly from throughput:
//
//	TRcv  — mean receive-stage time per message,
//	TFltr — match-stage time per filter evaluation,
//	TTx   — replicate+transmit time per delivered replica.
type StageTimes struct {
	TRcv, TFltr, TTx float64
}

// ServiceTime composes the stage times into Eq. 1's E[B] for a scenario
// with nFltr installed filters and replication grade r.
func (st StageTimes) ServiceTime(nFltr int, r float64) float64 {
	return st.TRcv + float64(nFltr)*st.TFltr + r*st.TTx
}

// matchingFilter builds the filter that matches the published messages.
func matchingFilter(ft core.FilterType) (filter.Filter, error) {
	switch ft {
	case core.CorrelationIDFiltering:
		return filter.NewCorrelationID("#0")
	case core.ApplicationPropertyFiltering:
		return filter.NewProperty("prop = 0")
	default:
		return nil, fmt.Errorf("%w: filter type %d", ErrBench, int(ft))
	}
}

// nonMatchingFilter builds the i-th non-matching filter.
func nonMatchingFilter(ft core.FilterType, i int, identical bool) (filter.Filter, error) {
	v := i + 1
	if identical {
		v = 1
	}
	switch ft {
	case core.CorrelationIDFiltering:
		return filter.NewCorrelationID("#" + strconv.Itoa(v))
	case core.ApplicationPropertyFiltering:
		return filter.NewProperty("prop = " + strconv.Itoa(v))
	default:
		return nil, fmt.Errorf("%w: filter type %d", ErrBench, int(ft))
	}
}

// benchMessage builds the message all publishers send: correlation ID #0
// or property prop=0, zero-byte body as in the paper.
func benchMessage(ft core.FilterType, topicName string) (*jms.Message, error) {
	m := jms.NewMessage(topicName)
	switch ft {
	case core.CorrelationIDFiltering:
		if err := m.SetCorrelationID("#0"); err != nil {
			return nil, err
		}
	case core.ApplicationPropertyFiltering:
		if err := m.SetInt32Property("prop", 0); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: filter type %d", ErrBench, int(ft))
	}
	return m, nil
}

// MeasureScenario runs one native measurement: n non-matching filters plus
// r matching subscribers (replication grade r), saturated publishers, and
// returns the trimmed-window rates. With Repetitions > 1 the scenario is
// repeated and the run with the median received rate is returned.
func MeasureScenario(cfg NativeConfig, n, r int) (NativeResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Repetitions == 1 {
		return measureOnce(cfg, n, r)
	}
	runs := make([]NativeResult, 0, cfg.Repetitions)
	for i := 0; i < cfg.Repetitions; i++ {
		res, err := measureOnce(cfg, n, r)
		if err != nil {
			return NativeResult{}, err
		}
		runs = append(runs, res)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].ReceivedRate < runs[j].ReceivedRate })
	return runs[len(runs)/2], nil
}

func measureOnce(cfg NativeConfig, n, r int) (NativeResult, error) {
	if n < 0 || r < 1 {
		return NativeResult{}, fmt.Errorf("%w: n=%d r=%d", ErrBench, n, r)
	}
	const topicName = "bench"

	b := broker.New(broker.Options{
		InFlight:         cfg.InFlight,
		SubscriberBuffer: cfg.SubscriberBuffer,
		Engine:           cfg.Engine,
		Shards:           cfg.Shards,
		StageTiming:      cfg.StageTiming,
	})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic(topicName); err != nil {
		return NativeResult{}, err
	}

	// Install r matching + n non-matching subscribers, drain all of them.
	var drainWG sync.WaitGroup
	drain := func(s *broker.Subscriber) {
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for range s.Chan() {
			}
		}()
	}
	for i := 0; i < r; i++ {
		f, err := matchingFilter(cfg.FilterType)
		if err != nil {
			return NativeResult{}, err
		}
		s, err := b.Subscribe(topicName, f)
		if err != nil {
			return NativeResult{}, err
		}
		drain(s)
	}
	for i := 0; i < n; i++ {
		f, err := nonMatchingFilter(cfg.FilterType, i, cfg.NonMatchingIdentical)
		if err != nil {
			return NativeResult{}, err
		}
		s, err := b.Subscribe(topicName, f)
		if err != nil {
			return NativeResult{}, err
		}
		drain(s)
	}

	// Saturated publishers: all messages are created in advance (one
	// template, cloned per send to keep ownership clear), mirroring the
	// paper's pre-created message pools.
	template, err := benchMessage(cfg.FilterType, topicName)
	if err != nil {
		return NativeResult{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	var pubWG sync.WaitGroup
	for p := 0; p < cfg.Publishers; p++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			if cfg.Batch > 1 {
				for ctx.Err() == nil {
					// Fresh slice per call: PublishBatch retains it.
					msgs := make([]*jms.Message, cfg.Batch)
					for i := range msgs {
						msgs[i] = template.Clone()
					}
					if err := b.PublishBatch(ctx, msgs); err != nil {
						return
					}
				}
				return
			}
			for ctx.Err() == nil {
				if err := b.Publish(ctx, template.Clone()); err != nil {
					return
				}
			}
		}()
	}

	// Warm-up, then the trimmed observation window on the broker counters.
	time.Sleep(cfg.Warmup)
	var recvWin, dispWin metrics.Window
	var recvCtr, dispCtr metrics.Counter
	snapshot := func() {
		s := b.Stats()
		recvCtr.Add(s.Received - recvCtr.Value())
		dispCtr.Add(s.Dispatched - dispCtr.Value())
	}
	snapshot()
	statsStart := b.Stats()
	stagesStart := b.StageStats()
	start := time.Now()
	recvWin.Start(&recvCtr, start)
	dispWin.Start(&dispCtr, start)

	time.Sleep(cfg.Measure)
	snapshot()
	statsEnd := b.Stats()
	stagesEnd := b.StageStats()
	end := time.Now()
	recvWin.End(&recvCtr, end)
	dispWin.End(&dispCtr, end)

	cancel()
	pubWG.Wait()
	if err := b.Close(); err != nil {
		return NativeResult{}, err
	}
	drainWG.Wait()

	recvRate, err := recvWin.Rate()
	if err != nil {
		return NativeResult{}, err
	}
	dispRate, err := dispWin.Rate()
	if err != nil {
		return NativeResult{}, err
	}
	if recvRate <= 0 {
		return NativeResult{}, fmt.Errorf("%w: zero received rate", ErrBench)
	}
	res := NativeResult{
		NFltr:           n + r,
		R:               r,
		ReceivedRate:    recvRate,
		DispatchedRate:  dispRate,
		OverallRate:     recvRate + dispRate,
		MeanServiceTime: 1 / recvRate,
	}
	if cfg.StageTiming {
		st, err := stageTimes(stagesEnd.Sub(stagesStart), statsStart, statsEnd)
		if err != nil {
			return NativeResult{}, err
		}
		res.Stages = &st
	}
	return res, nil
}

// stageTimes normalizes the windowed per-stage histogram deltas into Eq. 1
// cost components: receive time per message, match time per filter
// evaluation, replicate+transmit time per delivered replica.
func stageTimes(d broker.StageStats, s0, s1 broker.Stats) (StageTimes, error) {
	if !d.Enabled {
		return StageTimes{}, fmt.Errorf("%w: broker recorded no stage timings", ErrBench)
	}
	if d.Receive.Count == 0 {
		return StageTimes{}, fmt.Errorf("%w: no messages in stage-timing window", ErrBench)
	}
	const nsPerSec = 1e9
	st := StageTimes{
		TRcv: float64(d.Receive.Sum) / float64(d.Receive.Count) / nsPerSec,
	}
	if evals := s1.FilterEvals - s0.FilterEvals; evals > 0 {
		st.TFltr = float64(d.Match.Sum) / float64(evals) / nsPerSec
	}
	if copies := s1.Dispatched - s0.Dispatched; copies > 0 {
		st.TTx = float64(d.Replicate.Sum+d.Transmit.Sum) / float64(copies) / nsPerSec
	}
	return st, nil
}

// StudyGrid is the sweep of a native study.
type StudyGrid struct {
	// NValues are the counts of additional non-matching filters.
	NValues []int
	// RValues are the replication grades.
	RValues []int
}

// PaperGrid returns the paper's full grid.
func PaperGrid() StudyGrid {
	return StudyGrid{NValues: PaperNValues, RValues: PaperRValues}
}

// StudyResult is the outcome of a native parameter study.
type StudyResult struct {
	// Points are the measured data points.
	Points []NativeResult
	// Fit is the least-squares recovery of (t_rcv, t_fltr, t_tx) from the
	// points — this machine's Table I.
	Fit fit.Result
}

// RunNativeStudy sweeps the grid against the real broker and fits the cost
// model, reproducing the paper's Table I derivation on local hardware.
func RunNativeStudy(cfg NativeConfig, grid StudyGrid) (StudyResult, error) {
	if len(grid.NValues) == 0 || len(grid.RValues) == 0 {
		return StudyResult{}, fmt.Errorf("%w: empty grid", ErrBench)
	}
	var res StudyResult
	var obs []fit.Observation
	for _, n := range grid.NValues {
		for _, r := range grid.RValues {
			p, err := MeasureScenario(cfg, n, r)
			if err != nil {
				return StudyResult{}, fmt.Errorf("scenario n=%d r=%d: %w", n, r, err)
			}
			res.Points = append(res.Points, p)
			obs = append(obs, fit.Observation{
				NFltr:       p.NFltr,
				R:           float64(p.R),
				ServiceTime: p.MeanServiceTime,
			})
		}
	}
	f, err := fit.Fit(obs)
	if err != nil {
		return StudyResult{}, err
	}
	res.Fit = f
	return res, nil
}

// Table1Series renders a study result as the repository's version of
// Table I next to the paper's constants.
func Table1Series(res StudyResult, ft core.FilterType) (Series, error) {
	paper, err := core.TableI(ft)
	if err != nil {
		return Series{}, err
	}
	s := Series{
		Name: fmt.Sprintf("Table I (%v): native fit vs paper", ft),
		Cols: []string{"t_rcv_s", "t_fltr_s", "t_tx_s", "R2"},
	}
	if err := s.Append(res.Fit.Model.TRcv, res.Fit.Model.TFltr, res.Fit.Model.TTx, res.Fit.R2); err != nil {
		return Series{}, err
	}
	if err := s.Append(paper.TRcv, paper.TFltr, paper.TTx, 1); err != nil {
		return Series{}, err
	}
	return s, nil
}

// Fig4Native renders measured native points in Fig. 4's format: one series
// per replication grade with measured overall throughput and this fit's
// model prediction.
func Fig4Native(res StudyResult) ([]Series, error) {
	byR := make(map[int]*Series)
	var order []int
	for _, p := range res.Points {
		s, ok := byR[p.R]
		if !ok {
			s = &Series{
				Name: fmt.Sprintf("Fig4(native) R=%d", p.R),
				Cols: []string{"n_fltr", "measured_overall_msgs_per_s", "fit_model_overall_msgs_per_s"},
			}
			byR[p.R] = s
			order = append(order, p.R)
		}
		_, _, modelOverall := res.Fit.Model.Throughput(p.NFltr, float64(p.R))
		if err := s.Append(float64(p.NFltr), p.OverallRate, modelOverall); err != nil {
			return nil, err
		}
	}
	out := make([]Series, 0, len(order))
	for _, r := range order {
		out = append(out, *byR[r])
	}
	return out, nil
}
