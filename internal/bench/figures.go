package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/mg1"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PaperNValues is the paper's grid of additional non-matching filters.
var PaperNValues = []int{5, 10, 20, 40, 80, 160}

// PaperRValues is the paper's grid of replication grades.
var PaperRValues = []int{1, 2, 5, 10, 20, 40}

// modelFor returns the Table I constants for the filter type.
func modelFor(ft core.FilterType) (core.CostModel, error) {
	return core.TableI(ft)
}

// Fig4 regenerates Figure 4: the overall message throughput of the
// saturated server depending on the number of installed filters
// n_fltr = n + R, for each replication grade R. Per series the columns are
// the measured throughput (virtual-time simulation with the calibrated
// constants — the stand-in for the paper's testbed measurement) and the
// model prediction (Eq. 1).
func Fig4(ft core.FilterType, messages int, seed int64) ([]Series, error) {
	model, err := modelFor(ft)
	if err != nil {
		return nil, err
	}
	if messages <= 0 {
		return nil, fmt.Errorf("%w: messages=%d", ErrBench, messages)
	}
	warmup := messages / 20

	var out []Series
	for _, r := range PaperRValues {
		s := Series{
			Name: fmt.Sprintf("Fig4 %v R=%d", ft, r),
			Cols: []string{"n_fltr", "measured_overall_msgs_per_s", "model_overall_msgs_per_s"},
		}
		for _, n := range PaperNValues {
			nFltr := n + r
			det, err := replication.NewDeterministic(float64(r))
			if err != nil {
				return nil, err
			}
			res, err := sim.SimulateSaturated(sim.BrokerConfig{
				Model: model, NFltr: nFltr, R: det, Seed: seed,
			}, messages, warmup)
			if err != nil {
				return nil, err
			}
			_, _, modelOverall := model.Throughput(nFltr, float64(r))
			if err := s.Append(float64(nFltr), res.Overall, modelOverall); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig5 regenerates Figure 5: the mean message service time E[B] (Eq. 1)
// over the number of filters, for E[R] in {1, 10, 100} and both filter
// types, on log-log axes.
func Fig5() ([]Series, error) {
	grid, err := LogSpaceInts(1, 10000, 12)
	if err != nil {
		return nil, err
	}
	var out []Series
	for _, ft := range []core.FilterType{core.CorrelationIDFiltering, core.ApplicationPropertyFiltering} {
		model, err := modelFor(ft)
		if err != nil {
			return nil, err
		}
		for _, r := range []float64{1, 10, 100} {
			s := Series{
				Name: fmt.Sprintf("Fig5 %v E[R]=%g", ft, r),
				Cols: []string{"n_fltr", "mean_service_time_s"},
			}
			for _, n := range grid {
				if err := s.Append(float64(n), model.MeanServiceTime(n, r)); err != nil {
					return nil, err
				}
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Fig6 regenerates Figure 6: the server capacity lambda_max (Eq. 2) at
// rho = 0.9 over the number of filters for correlation ID filtering, plus
// the equivalence observation (E[R]=10 and 100 without filters match
// n_fltr = 22 and 240 at E[R]=1).
func Fig6() ([]Series, error) {
	model := core.TableICorrelationID
	grid, err := LogSpaceInts(1, 10000, 12)
	if err != nil {
		return nil, err
	}
	var out []Series
	for _, r := range []float64{1, 10, 100} {
		s := Series{
			Name: fmt.Sprintf("Fig6 corrID E[R]=%g rho=0.9", r),
			Cols: []string{"n_fltr", "capacity_msgs_per_s"},
		}
		for _, n := range grid {
			c, err := model.Capacity(0.9, n, r)
			if err != nil {
				return nil, err
			}
			if err := s.Append(float64(n), c); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}

	eq := Series{
		Name: "Fig6 equivalence: E[R] vs n_fltr at equal capacity",
		Cols: []string{"mean_R", "equivalent_n_fltr"},
	}
	for _, r := range []float64{10, 100} {
		if err := eq.Append(r, model.EquivalentFilters(r)); err != nil {
			return nil, err
		}
	}
	out = append(out, eq)
	return out, nil
}

// Eq3Table regenerates the Section IV-A.2 break-even analysis: for each
// filter type and per-consumer filter count, the largest match probability
// at which the filters still increase server capacity (Eq. 3).
func Eq3Table() ([]Series, error) {
	var out []Series
	for _, ft := range []core.FilterType{core.CorrelationIDFiltering, core.ApplicationPropertyFiltering} {
		model, err := modelFor(ft)
		if err != nil {
			return nil, err
		}
		s := Series{
			Name: fmt.Sprintf("Eq3 break-even match probability, %v", ft),
			Cols: []string{"n_fltr_q", "break_even_p_match"},
		}
		for nq := 1; nq <= 4; nq++ {
			if err := s.Append(float64(nq), model.BreakEvenMatchProbability(nq)); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig8 regenerates Figure 8: the coefficient of variation of the service
// time when the replication grade follows the scaled Bernoulli model, over
// n_fltr for several match probabilities and both filter types.
func Fig8(pMatches []float64) ([]Series, error) {
	if len(pMatches) == 0 {
		pMatches = []float64{0.1, 0.3, 0.5, 0.9}
	}
	grid, err := LogSpaceInts(1, 10000, 12)
	if err != nil {
		return nil, err
	}
	var out []Series
	for _, ft := range []core.FilterType{core.CorrelationIDFiltering, core.ApplicationPropertyFiltering} {
		model, err := modelFor(ft)
		if err != nil {
			return nil, err
		}
		for _, p := range pMatches {
			s := Series{
				Name: fmt.Sprintf("Fig8 %v scaledBernoulli p=%g", ft, p),
				Cols: []string{"n_fltr", "cvar_B"},
			}
			for _, n := range grid {
				r, err := replication.NewScaledBernoulli(n, p)
				if err != nil {
					return nil, err
				}
				m, err := mg1.MomentsFromReplication(model.ConstantPart(n), model.TTx, r)
				if err != nil {
					return nil, err
				}
				if err := s.Append(float64(n), m.CVar()); err != nil {
					return nil, err
				}
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Fig9 regenerates Figure 9: like Fig8 but with the binomial replication
// model, whose service-time variability stays an order of magnitude lower.
func Fig9(pMatches []float64) ([]Series, error) {
	if len(pMatches) == 0 {
		pMatches = []float64{0.1, 0.5, 0.9}
	}
	grid, err := LogSpaceInts(1, 10000, 12)
	if err != nil {
		return nil, err
	}
	var out []Series
	for _, ft := range []core.FilterType{core.CorrelationIDFiltering, core.ApplicationPropertyFiltering} {
		model, err := modelFor(ft)
		if err != nil {
			return nil, err
		}
		for _, p := range pMatches {
			s := Series{
				Name: fmt.Sprintf("Fig9 %v binomial p=%g", ft, p),
				Cols: []string{"n_fltr", "cvar_B"},
			}
			for _, n := range grid {
				r, err := replication.NewBinomial(n, p)
				if err != nil {
					return nil, err
				}
				m, err := mg1.MomentsFromReplication(model.ConstantPart(n), model.TTx, r)
				if err != nil {
					return nil, err
				}
				if err := s.Append(float64(n), m.CVar()); err != nil {
					return nil, err
				}
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// Fig10 regenerates Figure 10: the normalized mean waiting time E[W]/E[B]
// over the server utilization rho, for several service-time coefficients
// of variation.
func Fig10(cvars []float64) ([]Series, error) {
	if len(cvars) == 0 {
		cvars = []float64{0, 0.2, 0.4, 0.65}
	}
	var out []Series
	for _, cv := range cvars {
		s := Series{
			Name: fmt.Sprintf("Fig10 cvar[B]=%g", cv),
			Cols: []string{"rho", "mean_wait_over_mean_service"},
		}
		for rho := 0.05; rho < 0.99; rho += 0.05 {
			w, err := mg1.MeanWaitNormalized(rho, cv)
			if err != nil {
				return nil, err
			}
			if err := s.Append(rho, w); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// waitDistFor builds the Gamma-approximated waiting-time distribution for
// a normalized service time (E[B]=1) with the given cvar at utilization
// rho, using the scaled Bernoulli family for the third moment (Fig. 11
// shows the family choice is negligible).
func waitDistFor(rho, cvar float64) (mg1.WaitDist, error) {
	fam := mg1.ScaledBernoulliFamily
	if cvar == 0 {
		fam = mg1.DeterministicFamily
	}
	r, err := mg1.FitReplication(0, 0.01, 1, cvar, fam)
	if err != nil {
		return mg1.WaitDist{}, err
	}
	m, err := mg1.MomentsFromReplication(0, 0.01, r)
	if err != nil {
		return mg1.WaitDist{}, err
	}
	q, err := mg1.QueueAtUtilization(rho, m)
	if err != nil {
		return mg1.WaitDist{}, err
	}
	return q.GammaApprox()
}

// Fig11 regenerates Figure 11: the complementary waiting-time distribution
// P(W > t) at rho = 0.9 on a normalized time axis (t in units of E[B]),
// for cvar[B] in {0, 0.2, 0.4}.
func Fig11(rho float64, cvars []float64, maxT float64, points int) ([]Series, error) {
	if rho <= 0 || rho >= 1 || maxT <= 0 || points < 2 {
		return nil, fmt.Errorf("%w: rho=%g maxT=%g points=%d", ErrBench, rho, maxT, points)
	}
	if len(cvars) == 0 {
		cvars = []float64{0, 0.2, 0.4}
	}
	var out []Series
	for _, cv := range cvars {
		dist, err := waitDistFor(rho, cv)
		if err != nil {
			return nil, err
		}
		s := Series{
			Name: fmt.Sprintf("Fig11 rho=%g cvar[B]=%g", rho, cv),
			Cols: []string{"t_over_EB", "P_wait_exceeds_t"},
		}
		for i := 0; i < points; i++ {
			t := maxT * float64(i) / float64(points-1)
			cc, err := dist.CCDF(t)
			if err != nil {
				return nil, err
			}
			if err := s.Append(t, cc); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig11DES regenerates Figure 11 with a simulation overlay: for each cvar
// the series carries the Gamma-approximated CCDF and the empirical CCDF
// from a discrete-event M/G/1 run with a Gamma service time of the same
// first two moments — the §IV-B.4 validation that the approximation is
// "very good".
func Fig11DES(rho float64, cvars []float64, maxT float64, points, customers int, seed int64) ([]Series, error) {
	if rho <= 0 || rho >= 1 || maxT <= 0 || points < 2 || customers < 100 {
		return nil, fmt.Errorf("%w: rho=%g maxT=%g points=%d customers=%d", ErrBench, rho, maxT, points, customers)
	}
	if len(cvars) == 0 {
		cvars = []float64{0, 0.2, 0.4}
	}
	var out []Series
	for _, cv := range cvars {
		// The DES draws Gamma(k, theta) service times, so the analytic
		// side uses that distribution's exact raw moments
		// (M1 = k*theta, M2 = k(k+1)*theta^2, M3 = k(k+1)(k+2)*theta^3)
		// for an apples-to-apples comparison of the waiting-time tails.
		var m mg1.ServiceMoments
		if cv == 0 {
			m = mg1.ServiceMoments{M1: 1, M2: 1, M3: 1}
		} else {
			k := 1 / (cv * cv)
			theta := 1 / k
			m = mg1.ServiceMoments{
				M1: 1,
				M2: k * (k + 1) * theta * theta,
				M3: k * (k + 1) * (k + 2) * theta * theta * theta,
			}
		}
		q, err := mg1.QueueAtUtilization(rho, m)
		if err != nil {
			return nil, err
		}
		dist, err := q.GammaApprox()
		if err != nil {
			return nil, err
		}
		svc, err := sim.GammaService(1, cv)
		if err != nil {
			return nil, err
		}
		res, err := sim.SimulateMG1(sim.MG1Config{
			Lambda:    rho, // E[B] = 1, so lambda = rho
			Service:   svc,
			Customers: customers,
			Warmup:    customers / 20,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		s := Series{
			Name: fmt.Sprintf("Fig11+DES rho=%g cvar[B]=%g", rho, cv),
			Cols: []string{"t_over_EB", "gamma_approx_P_wait_exceeds_t", "simulated_P_wait_exceeds_t"},
		}
		for i := 0; i < points; i++ {
			t := maxT * float64(i) / float64(points-1)
			ana, err := dist.CCDF(t)
			if err != nil {
				return nil, err
			}
			emp, err := empiricalCCDF(res.Waits, t)
			if err != nil {
				return nil, err
			}
			if err := s.Append(t, ana, emp); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// empiricalCCDF estimates P(W > t) from a summary by bisecting its
// quantile function.
func empiricalCCDF(w *stats.Summary, t float64) (float64, error) {
	lo, hi := 0.0, 1.0
	for i := 0; i < 30; i++ {
		mid := (lo + hi) / 2
		q, err := w.Quantile(mid)
		if err != nil {
			return 0, err
		}
		if q <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 1 - lo, nil
}

// Fig12 regenerates Figure 12: the 99% and 99.99% quantiles of the waiting
// time (normalized by E[B]) over the server utilization, for several
// cvar[B] values.
func Fig12(cvars []float64) ([]Series, error) {
	if len(cvars) == 0 {
		cvars = []float64{0, 0.2, 0.4}
	}
	var out []Series
	for _, cv := range cvars {
		s := Series{
			Name: fmt.Sprintf("Fig12 cvar[B]=%g", cv),
			Cols: []string{"rho", "Q99_over_EB", "Q9999_over_EB"},
		}
		for rho := 0.1; rho <= 0.951; rho += 0.05 {
			dist, err := waitDistFor(rho, cv)
			if err != nil {
				return nil, err
			}
			q99, err := dist.Quantile(0.99)
			if err != nil {
				return nil, err
			}
			q9999, err := dist.Quantile(0.9999)
			if err != nil {
				return nil, err
			}
			if err := s.Append(rho, q99, q9999); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}
	return out, nil
}

// PSRWaitTable quantifies the §IV-C.3 warning attached to Fig. 15: for
// each subscriber count m, the capacity of a single publisher-side server
// and the waiting times at rho=0.9 (mean and 99.99% quantile) — showing
// how PSR's per-server collapse at large m turns into second-scale waits.
func PSRWaitTable(ms []int) ([]Series, error) {
	if len(ms) == 0 {
		ms = []int{10, 100, 1000, 10000}
	}
	s := Series{
		Name: "PSR per-server waiting at rho=0.9 (corrID, 10 filters/subscriber, E[R]=1)",
		Cols: []string{"m_subscribers", "per_server_capacity_msgs_per_s", "mean_wait_s", "q9999_wait_s"},
	}
	for _, m := range ms {
		sc := distrib.Scenario{
			Model:       core.TableICorrelationID,
			N:           1,
			M:           m,
			NFltrPerSub: 10,
			MeanR:       1,
			Rho:         0.9,
		}
		per, err := distrib.PSRPerServerCapacity(sc)
		if err != nil {
			return nil, err
		}
		meanW, q9999, err := distrib.PSRWaiting(sc)
		if err != nil {
			return nil, err
		}
		if err := s.Append(float64(m), per, meanW, q9999); err != nil {
			return nil, err
		}
	}
	return []Series{s}, nil
}

// Fig15 regenerates Figure 15: the system capacities of PSR and SSR over
// the number of publishers n for several subscriber counts m, in the
// paper's setting (E[R]=1, rho=0.9, correlation ID filtering, 10 filters
// per subscriber).
func Fig15(ms []int) ([]Series, error) {
	if len(ms) == 0 {
		ms = []int{10, 100, 1000, 10000}
	}
	nGrid, err := LogSpaceInts(1, 10000, 8)
	if err != nil {
		return nil, err
	}
	scenario := func(n, m int) distrib.Scenario {
		return distrib.Scenario{
			Model:       core.TableICorrelationID,
			N:           n,
			M:           m,
			NFltrPerSub: 10,
			MeanR:       1,
			Rho:         0.9,
		}
	}
	var out []Series
	for _, m := range ms {
		s := Series{
			Name: fmt.Sprintf("Fig15 PSR m=%d", m),
			Cols: []string{"n_publishers", "capacity_msgs_per_s"},
		}
		for _, n := range nGrid {
			c, err := distrib.PSRCapacity(scenario(n, m))
			if err != nil {
				return nil, err
			}
			if err := s.Append(float64(n), c); err != nil {
				return nil, err
			}
		}
		out = append(out, s)
	}
	ssr := Series{
		Name: "Fig15 SSR (independent of n and m)",
		Cols: []string{"n_publishers", "capacity_msgs_per_s"},
	}
	ssrCap, err := distrib.SSRCapacity(scenario(1, 1))
	if err != nil {
		return nil, err
	}
	for _, n := range nGrid {
		if err := ssr.Append(float64(n), ssrCap); err != nil {
			return nil, err
		}
	}
	out = append(out, ssr)

	cross := Series{
		Name: "Fig15 crossover n (Eq. 23): smallest n where PSR beats SSR",
		Cols: []string{"m_subscribers", "crossover_n"},
	}
	for _, m := range ms {
		n, err := distrib.CrossoverN(scenario(1, m))
		if err != nil {
			return nil, err
		}
		if err := cross.Append(float64(m), float64(n)); err != nil {
			return nil, err
		}
	}
	out = append(out, cross)
	return out, nil
}
