package bench

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSeriesAppendAndCSV(t *testing.T) {
	s := Series{Name: "demo", Cols: []string{"x", "y"}}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(3); !errors.Is(err, ErrBench) {
		t.Errorf("short row err = %v", err)
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# demo") || !strings.Contains(out, "x,y") || !strings.Contains(out, "1,2") {
		t.Errorf("CSV = %q", out)
	}
	if txt := s.String(); !strings.Contains(txt, "demo") {
		t.Errorf("String = %q", txt)
	}
}

func TestWriteAll(t *testing.T) {
	var buf bytes.Buffer
	series := []Series{
		{Name: "a", Cols: []string{"x"}, Rows: [][]float64{{1}}},
		{Name: "b", Cols: []string{"x"}, Rows: [][]float64{{2}}},
	}
	if err := WriteAll(&buf, series); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "#"); got != 2 {
		t.Errorf("series headers = %d", got)
	}
}

func TestLogSpaceInts(t *testing.T) {
	grid, err := LogSpaceInts(1, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if grid[0] != 1 || grid[len(grid)-1] != 1000 {
		t.Errorf("grid endpoints = %d..%d", grid[0], grid[len(grid)-1])
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatalf("grid not strictly ascending: %v", grid)
		}
	}
	if _, err := LogSpaceInts(0, 10, 3); !errors.Is(err, ErrBench) {
		t.Error("lo=0 accepted")
	}
	if _, err := LogSpaceInts(10, 5, 3); !errors.Is(err, ErrBench) {
		t.Error("hi<lo accepted")
	}
}

func TestFig4ModelAgreesWithMeasurement(t *testing.T) {
	// The paper's central validation: the analytical model agrees with
	// the (virtual-time) measurement for all n_fltr and R.
	series, err := Fig4(core.CorrelationIDFiltering, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(PaperRValues) {
		t.Fatalf("series count = %d", len(series))
	}
	for _, s := range series {
		if len(s.Rows) != len(PaperNValues) {
			t.Fatalf("%s: rows = %d", s.Name, len(s.Rows))
		}
		for _, row := range s.Rows {
			measured, model := row[1], row[2]
			if math.Abs(measured-model)/model > 0.02 {
				t.Errorf("%s at n_fltr=%g: measured %g vs model %g", s.Name, row[0], measured, model)
			}
		}
	}
	// Throughput decreases with n_fltr within each series.
	for _, s := range series {
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i][1] >= s.Rows[i-1][1] {
				t.Errorf("%s: overall throughput not decreasing at row %d", s.Name, i)
			}
		}
	}
}

func TestFig4AppPropBelowCorrID(t *testing.T) {
	// "the absolute overall message throughput is about 50% compared to
	// the one of correlation ID filters".
	corr, err := Fig4(core.CorrelationIDFiltering, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Fig4(core.ApplicationPropertyFiltering, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the R=1 series, largest n_fltr point.
	lastCorr := corr[0].Rows[len(corr[0].Rows)-1][1]
	lastApp := app[0].Rows[len(app[0].Rows)-1][1]
	ratio := lastApp / lastCorr
	if ratio < 0.35 || ratio > 0.7 {
		t.Errorf("appProp/corrID throughput ratio = %.2f, want ~0.5", ratio)
	}
}

func TestFig5Properties(t *testing.T) {
	series, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 { // 2 filter types x 3 E[R] values
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i][1] <= s.Rows[i-1][1] {
				t.Errorf("%s: E[B] not increasing in n_fltr", s.Name)
				break
			}
		}
	}
}

func TestFig6EquivalenceRows(t *testing.T) {
	series, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	eq := series[len(series)-1]
	if len(eq.Rows) != 2 {
		t.Fatalf("equivalence rows = %d", len(eq.Rows))
	}
	// The paper's 22 and 240.
	if math.Abs(eq.Rows[0][1]-22) > 1 {
		t.Errorf("equivalent filters for E[R]=10: %g, want ~22", eq.Rows[0][1])
	}
	if math.Abs(eq.Rows[1][1]-240) > 2 {
		t.Errorf("equivalent filters for E[R]=100: %g, want ~240", eq.Rows[1][1])
	}
	// Capacity series decrease with n_fltr.
	for _, s := range series[:len(series)-1] {
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i][1] >= s.Rows[i-1][1] {
				t.Errorf("%s: capacity not decreasing", s.Name)
				break
			}
		}
	}
}

func TestEq3TablePaperThresholds(t *testing.T) {
	series, err := Eq3Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	corr := series[0]
	if math.Abs(corr.Rows[0][1]-0.587) > 0.001 {
		t.Errorf("corrID n=1 break-even = %g, want 0.587", corr.Rows[0][1])
	}
	if math.Abs(corr.Rows[1][1]-0.174) > 0.001 {
		t.Errorf("corrID n=2 break-even = %g, want 0.174", corr.Rows[1][1])
	}
	if corr.Rows[2][1] > 0 {
		t.Errorf("corrID n=3 break-even = %g, want <= 0", corr.Rows[2][1])
	}
	app := series[1]
	if math.Abs(app.Rows[0][1]-0.099) > 0.001 {
		t.Errorf("appProp n=1 break-even = %g, want 0.099", app.Rows[0][1])
	}
	if app.Rows[1][1] > 0 {
		t.Errorf("appProp n=2 break-even = %g, want <= 0", app.Rows[1][1])
	}
}

func TestFig8BernoulliCvarBounds(t *testing.T) {
	series, err := Fig8(nil)
	if err != nil {
		t.Fatal(err)
	}
	maxCvar := 0.0
	for _, s := range series {
		for _, row := range s.Rows {
			if row[1] > maxCvar {
				maxCvar = row[1]
			}
			if row[1] < 0 {
				t.Fatalf("%s: negative cvar", s.Name)
			}
		}
	}
	// "The coefficient of variation is at most cvar[B] = 0.65."
	if maxCvar > 0.66 {
		t.Errorf("max cvar = %g, paper bound ~0.65", maxCvar)
	}
	if maxCvar < 0.5 {
		t.Errorf("max cvar = %g, should approach ~0.65", maxCvar)
	}
	// Convergence: the last two grid points of each series are close.
	for _, s := range series {
		n := len(s.Rows)
		a, b := s.Rows[n-2][1], s.Rows[n-1][1]
		if math.Abs(a-b) > 0.01 {
			t.Errorf("%s: no convergence at large n_fltr (%g vs %g)", s.Name, a, b)
		}
	}
}

func TestFig9BinomialMuchSmallerThanBernoulli(t *testing.T) {
	bern, err := Fig8([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	bino, err := Fig9([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the correlation ID series at moderate-to-large n: binomial
	// variability must be far below scaled Bernoulli's.
	bSeries, nSeries := bern[0], bino[0]
	for i := range bSeries.Rows {
		nFltr := bSeries.Rows[i][0]
		if nFltr < 50 {
			continue
		}
		if nSeries.Rows[i][1] > bSeries.Rows[i][1]/3 {
			t.Errorf("n=%g: binomial cvar %g not well below Bernoulli %g",
				nFltr, nSeries.Rows[i][1], bSeries.Rows[i][1])
		}
	}
	// Beyond a handful of filters the binomial values stay small (the
	// paper reads ~0.064 / ~0.033 off its plotted range); at n=1..4 the
	// relative variability of Binomial(n, p) is naturally larger.
	for _, s := range bino {
		for _, row := range s.Rows {
			if row[0] >= 20 && row[1] > 0.15 {
				t.Errorf("%s: binomial cvar = %g at n=%g, implausibly large", s.Name, row[1], row[0])
			}
		}
	}
}

func TestFig10ClosedForm(t *testing.T) {
	series, err := Fig10(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	// Higher cvar shifts the curve up; each curve increases with rho.
	for i := 1; i < len(series); i++ {
		for j := range series[i].Rows {
			if series[i].Rows[j][1] <= series[i-1].Rows[j][1] {
				t.Errorf("series %d not above series %d at rho=%g", i, i-1, series[i].Rows[j][0])
				break
			}
		}
	}
	for _, s := range series {
		for j := 1; j < len(s.Rows); j++ {
			if s.Rows[j][1] <= s.Rows[j-1][1] {
				t.Errorf("%s: E[W]/E[B] not increasing in rho", s.Name)
				break
			}
		}
	}
}

func TestFig11ShapeAndOrdering(t *testing.T) {
	series, err := Fig11(0.9, nil, 50, 26)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		// CCDF starts at rho and decreases.
		if math.Abs(s.Rows[0][1]-0.9) > 1e-9 {
			t.Errorf("%s: CCDF(0) = %g, want 0.9", s.Name, s.Rows[0][1])
		}
		for j := 1; j < len(s.Rows); j++ {
			if s.Rows[j][1] > s.Rows[j-1][1]+1e-12 {
				t.Errorf("%s: CCDF not decreasing", s.Name)
				break
			}
		}
	}
	// Larger cvar -> heavier tail (compare at a mid/tail point).
	tail := len(series[0].Rows) - 1
	if !(series[2].Rows[tail][1] >= series[1].Rows[tail][1] &&
		series[1].Rows[tail][1] >= series[0].Rows[tail][1]) {
		t.Error("tails not ordered by cvar")
	}
	if _, err := Fig11(1.2, nil, 50, 10); !errors.Is(err, ErrBench) {
		t.Error("rho > 1 accepted")
	}
}

func TestFig12QuantileBands(t *testing.T) {
	series, err := Fig12(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		for j, row := range s.Rows {
			if row[2] <= row[1] {
				t.Errorf("%s row %d: Q9999 %g <= Q99 %g", s.Name, j, row[2], row[1])
			}
			if j > 0 && row[1] < s.Rows[j-1][1] {
				t.Errorf("%s: Q99 not increasing in rho", s.Name)
			}
		}
		// At rho=0.9 (row with rho closest to 0.9) Q9999 is ~dozens of E[B].
		for _, row := range s.Rows {
			if math.Abs(row[0]-0.9) < 0.01 {
				if row[2] < 10 || row[2] > 80 {
					t.Errorf("%s: Q9999 at rho=0.9 = %g E[B], outside plausible band", s.Name, row[2])
				}
			}
		}
	}
}

func TestFig15CapacitiesAndCrossover(t *testing.T) {
	series, err := Fig15(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: one PSR series per m, then SSR, then crossover table.
	if len(series) != 4+2 {
		t.Fatalf("series = %d", len(series))
	}
	ssr := series[4]
	// SSR horizontal.
	for _, row := range ssr.Rows {
		if row[1] != ssr.Rows[0][1] {
			t.Error("SSR capacity not constant")
			break
		}
	}
	// PSR linear in n: capacity(n)/n constant within a series.
	psr := series[0]
	base := psr.Rows[0][1] / psr.Rows[0][0]
	for _, row := range psr.Rows {
		if math.Abs(row[1]/row[0]-base)/base > 1e-9 {
			t.Error("PSR capacity not linear in n")
			break
		}
	}
	// More subscribers -> lower PSR capacity at the same n.
	for i := 1; i < 4; i++ {
		if series[i].Rows[0][1] >= series[i-1].Rows[0][1] {
			t.Errorf("PSR capacity at m series %d not below series %d", i, i-1)
		}
	}
	// Crossover table: crossover n grows with m.
	cross := series[5]
	for i := 1; i < len(cross.Rows); i++ {
		if cross.Rows[i][1] <= cross.Rows[i-1][1] {
			t.Error("crossover n not increasing with m")
			break
		}
	}
}

func TestNativeMeasurementMatchesLinearModel(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	// A reduced grid keeps the test fast; the fit must still describe the
	// measurements well (R^2 close to 1), which is the paper's validation
	// that a linear-scan broker obeys Eq. 1.
	cfg := NativeConfig{
		FilterType: core.CorrelationIDFiltering,
		Publishers: 3,
		Warmup:     30 * time.Millisecond,
		Measure:    150 * time.Millisecond,
	}
	grid := StudyGrid{NValues: []int{0, 40, 160}, RValues: []int{1, 8}}
	res, err := RunNativeStudy(cfg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Fit.R2 < 0.95 {
		t.Errorf("native fit R2 = %v, want >= 0.95 (linear model must hold)", res.Fit.R2)
	}
	if res.Fit.Model.TFltr <= 0 {
		t.Errorf("fitted t_fltr = %g, want > 0", res.Fit.Model.TFltr)
	}
	// Throughput decreases as filters increase (within R=1 points).
	var r1 []NativeResult
	for _, p := range res.Points {
		if p.R == 1 {
			r1 = append(r1, p)
		}
	}
	// Wall-clock noise can reorder adjacent grid points by a few percent;
	// require the clear trend between the extremes (0 vs 160 extra
	// filters).
	if len(r1) >= 2 {
		first, last := r1[0].ReceivedRate, r1[len(r1)-1].ReceivedRate
		if last >= first*0.95 {
			t.Errorf("received rate did not decrease with filters: %.0f -> %.0f msgs/s", first, last)
		}
	}

	t1, err := Table1Series(StudyResult{Fit: res.Fit}, core.CorrelationIDFiltering)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 2 {
		t.Errorf("Table1Series rows = %d", len(t1.Rows))
	}
	f4, err := Fig4Native(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4) != 2 { // two R values
		t.Errorf("Fig4Native series = %d", len(f4))
	}
}

func TestIdenticalVsDifferentFilters(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	// Experiment X1: with a linear filter scan (no identical-filter
	// optimization, like FioranoMQ), n identical non-matching filters cost
	// the same as n different ones.
	base := NativeConfig{
		FilterType: core.CorrelationIDFiltering,
		Publishers: 3,
		Warmup:     30 * time.Millisecond,
		Measure:    200 * time.Millisecond,
	}
	cfgSame := base
	cfgSame.NonMatchingIdentical = true

	// Wall-clock measurements on a shared machine are noisy; compare the
	// medians of a few repetitions, as the paper repeats runs.
	median := func(cfg NativeConfig) float64 {
		t.Helper()
		var rates []float64
		for i := 0; i < 3; i++ {
			res, err := MeasureScenario(cfg, 120, 1)
			if err != nil {
				t.Fatal(err)
			}
			rates = append(rates, res.ReceivedRate)
		}
		sort.Float64s(rates)
		return rates[1]
	}
	ratio := median(cfgSame) / median(base)
	if ratio < 0.6 || ratio > 1.67 {
		t.Errorf("identical/different throughput ratio = %.2f, want ~1 (no optimization)", ratio)
	}
}

func TestMeasureScenarioParams(t *testing.T) {
	cfg := NativeConfig{FilterType: core.CorrelationIDFiltering}
	if _, err := MeasureScenario(cfg, -1, 1); !errors.Is(err, ErrBench) {
		t.Error("negative n accepted")
	}
	if _, err := MeasureScenario(cfg, 1, 0); !errors.Is(err, ErrBench) {
		t.Error("r=0 accepted")
	}
	if _, err := RunNativeStudy(cfg, StudyGrid{}); !errors.Is(err, ErrBench) {
		t.Error("empty grid accepted")
	}
	bad := NativeConfig{FilterType: core.FilterType(9)}
	if _, err := MeasureScenario(bad, 1, 1); err == nil {
		t.Error("bad filter type accepted")
	}
}

func TestSelectionMechanismOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	// §III-B: throughput suffers least from topic selection, then
	// correlation ID filtering, then application property filtering.
	cfg := NativeConfig{
		Publishers:  3,
		Warmup:      50 * time.Millisecond,
		Measure:     300 * time.Millisecond,
		Repetitions: 3,
	}
	res, err := CompareMechanisms(cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("topic=%.0f corrID=%.0f appProp=%.0f msgs/s",
		res.TopicRate, res.CorrIDRate, res.AppPropRate)
	// Allow slack for scheduler noise but require the ordering.
	if res.TopicRate < res.CorrIDRate {
		t.Errorf("topic selection (%.0f) should outperform correlation ID filtering (%.0f)",
			res.TopicRate, res.CorrIDRate)
	}
	if res.CorrIDRate < res.AppPropRate {
		t.Errorf("correlation ID filtering (%.0f) should outperform property filtering (%.0f)",
			res.CorrIDRate, res.AppPropRate)
	}
	if _, err := CompareMechanisms(cfg, -1); !errors.Is(err, ErrBench) {
		t.Error("negative n accepted")
	}
}

func TestFig11DESMatchesGammaApprox(t *testing.T) {
	// For an exponential service time (cvar=1) the Gamma approximation is
	// exact; for smaller cvar the paper calls it "very good", which on its
	// log-scale plot means within a small constant factor in the tail.
	series, err := Fig11DES(0.9, []float64{0.2, 1}, 30, 16, 3000000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	check := func(s Series, maxLogRatio float64) {
		t.Helper()
		for _, row := range s.Rows {
			tOverEB, ana, emp := row[0], row[1], row[2]
			if ana < 0.01 || emp < 0.01 {
				continue // too little statistical mass in the far tail
			}
			if r := math.Abs(math.Log10(ana / emp)); r > maxLogRatio {
				t.Errorf("%s t=%g: gamma %g vs DES %g (log10 ratio %.3f)",
					s.Name, tOverEB, ana, emp, r)
			}
		}
	}
	check(series[0], 0.12) // cvar=0.2: within a factor ~1.3 everywhere
	check(series[1], 0.03) // cvar=1: near-exact
	if _, err := Fig11DES(1.5, nil, 30, 16, 1000, 1); !errors.Is(err, ErrBench) {
		t.Error("rho > 1 accepted")
	}
	if _, err := Fig11DES(0.9, nil, 30, 16, 10, 1); !errors.Is(err, ErrBench) {
		t.Error("tiny customer count accepted")
	}
}

func TestBodySizeImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	cfg := NativeConfig{
		Publishers: 3,
		Warmup:     40 * time.Millisecond,
		Measure:    250 * time.Millisecond,
	}
	points, err := MeasureBodySizeImpact(cfg, []int{0, 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	t.Logf("0B: %.0f msgs/s, 256KiB: %.0f msgs/s", points[0].ReceivedRate, points[1].ReceivedRate)
	// §III-B: message size has a significant impact. A 256 KiB body must
	// cost visibly against the 0-byte default.
	if points[1].ReceivedRate >= points[0].ReceivedRate*0.8 {
		t.Errorf("large bodies did not reduce throughput: %.0f vs %.0f",
			points[1].ReceivedRate, points[0].ReceivedRate)
	}
	if _, err := MeasureBodySizeImpact(cfg, []int{-1}); !errors.Is(err, ErrBench) {
		t.Error("negative size accepted")
	}
}

func TestNativeWaitingTimeAgainstPK(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	// X3: the real broker under Poisson load obeys the M/G/1 analysis to
	// within wall-clock noise. The scenario installs thousands of selector
	// filters so E[B] reaches hundreds of microseconds — large enough for
	// time.Sleep-based Poisson pacing (granularity ~0.1 ms) to hold.
	cfg := NativeConfig{
		FilterType: core.ApplicationPropertyFiltering,
		Publishers: 3,
		Warmup:     40 * time.Millisecond,
		Measure:    250 * time.Millisecond,
	}
	var res WaitingResult
	var meanW float64
	ok := false
	for attempt := 0; attempt < 3 && !ok; attempt++ {
		var err error
		res, err = MeasureNativeWaiting(cfg, 8000, 1, 0.5, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Waits.N() < 800 {
			t.Fatalf("observed only %d waits", res.Waits.N())
		}
		meanW, err = res.Waits.Mean()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("attempt %d: E[B]=%.3gs predicted E[W]=%.3gs observed E[W]=%.3gs (pacing %.2fx)",
			attempt, res.MeanServiceTime, res.PredictedMeanWait, meanW,
			float64(res.ActualDuration)/float64(res.IdealDuration))
		// Generous band: sleep granularity, GC pauses and scheduler noise
		// all land in the observed waits, so require agreement within a
		// factor of 4 plus a 0.2 ms floor.
		ok = meanW <= 4*res.PredictedMeanWait+2e-4
	}
	if !ok {
		// A starved Poisson source (shared CI machine) invalidates the
		// comparison; only fail when the pacing was faithful.
		if float64(res.ActualDuration) > 1.5*float64(res.IdealDuration) {
			t.Skipf("machine too noisy for waiting-time comparison: pacing %.2fx ideal",
				float64(res.ActualDuration)/float64(res.IdealDuration))
		}
		t.Errorf("observed mean wait %g far above prediction %g", meanW, res.PredictedMeanWait)
	}
	if _, err := MeasureNativeWaiting(cfg, 1, 1, 1.2, 1000); !errors.Is(err, ErrBench) {
		t.Error("rho > 1 accepted")
	}
	if _, err := MeasureNativeWaiting(cfg, 1, 1, 0.5, 10); !errors.Is(err, ErrBench) {
		t.Error("tiny message count accepted")
	}
}

func TestPSRWaitTable(t *testing.T) {
	series, err := PSRWaitTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := series[0].Rows
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Capacity decreases and waits increase with m.
	for i := 1; i < len(rows); i++ {
		if rows[i][1] >= rows[i-1][1] {
			t.Error("per-server capacity not decreasing with m")
		}
		if rows[i][2] <= rows[i-1][2] {
			t.Error("mean wait not increasing with m")
		}
	}
	// m=10^4: second-scale mean waits, tens-of-seconds Q9999.
	last := rows[len(rows)-1]
	if last[2] < 1 || last[3] < 10 {
		t.Errorf("m=1e4 waits = %.2fs / %.2fs, want >=1s / >=10s", last[2], last[3])
	}
}
