package bench

import (
	"fmt"

	"repro/internal/fit"
)

// This file turns the broker's per-stage instrumentation into the paper's
// quantities: each measured scenario carries directly observed
// t_rcv/t_fltr/t_tx components (NativeResult.Stages), which can be
// aggregated, re-fitted through Eq. 1, and laid next to the throughput fit
// that produced Table I. Agreement between the two closes the loop: the
// constants the paper recovered offline from saturated-throughput sweeps
// are the same numbers the pipeline measures stage by stage at runtime.

// StageSummary averages the per-scenario stage times of a study into one
// set of Eq. 1 constants. It fails unless the study ran with
// NativeConfig.StageTiming.
func StageSummary(res StudyResult) (StageTimes, error) {
	var sum StageTimes
	n := 0
	for _, p := range res.Points {
		if p.Stages == nil {
			continue
		}
		sum.TRcv += p.Stages.TRcv
		sum.TFltr += p.Stages.TFltr
		sum.TTx += p.Stages.TTx
		n++
	}
	if n == 0 {
		return StageTimes{}, fmt.Errorf("%w: study carries no stage timings (set NativeConfig.StageTiming)", ErrBench)
	}
	sum.TRcv /= float64(n)
	sum.TFltr /= float64(n)
	sum.TTx /= float64(n)
	return sum, nil
}

// StageFit re-fits Eq. 1 on service times composed from the per-stage
// measurements (fit.FromStages) instead of from throughput reciprocals.
// If the stage instrumentation is faithful, the recovered constants
// reproduce the throughput fit.
func StageFit(res StudyResult) (fit.Result, error) {
	var obs []fit.Observation
	for _, p := range res.Points {
		if p.Stages == nil {
			continue
		}
		o, err := fit.FromStages(p.NFltr, float64(p.R), p.Stages.TRcv, p.Stages.TFltr, p.Stages.TTx)
		if err != nil {
			return fit.Result{}, err
		}
		obs = append(obs, o)
	}
	if len(obs) == 0 {
		return fit.Result{}, fmt.Errorf("%w: study carries no stage timings (set NativeConfig.StageTiming)", ErrBench)
	}
	return fit.Fit(obs)
}

// StageSeries renders the per-scenario stage measurements: each point's
// measured components, the service time they compose to (Eq. 1), and the
// externally measured service time (1/throughput) it should explain.
func StageSeries(res StudyResult) (Series, error) {
	s := Series{
		Name: "Per-stage timing: measured Eq. 1 components",
		Cols: []string{"n_fltr", "R", "t_rcv_us", "t_fltr_us", "t_tx_us", "staged_EB_us", "meas_EB_us"},
	}
	rows := 0
	for _, p := range res.Points {
		if p.Stages == nil {
			continue
		}
		staged := p.Stages.ServiceTime(p.NFltr, float64(p.R))
		err := s.Append(float64(p.NFltr), float64(p.R),
			p.Stages.TRcv*1e6, p.Stages.TFltr*1e6, p.Stages.TTx*1e6,
			staged*1e6, p.MeanServiceTime*1e6)
		if err != nil {
			return Series{}, err
		}
		rows++
	}
	if rows == 0 {
		return Series{}, fmt.Errorf("%w: study carries no stage timings (set NativeConfig.StageTiming)", ErrBench)
	}
	return s, nil
}
