// Package stats provides the statistical plumbing shared by the simulator
// and the benchmark harness: a seedable RNG with the samplers the study
// needs (exponential inter-arrival times, binomial replication grades), and
// streaming summary statistics with confidence intervals and quantile
// estimation, mirroring how the paper reduces repeated measurement runs.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/specfunc"
)

// ErrEmpty is returned when a summary has no observations.
var ErrEmpty = errors.New("stats: no observations")

// RNG wraps math/rand with the domain samplers used in this repository.
// It is deterministic for a given seed, which keeps experiments
// reproducible.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Exp returns an exponentially distributed sample with the given rate
// (mean 1/rate). Inter-arrival times of the paper's Poisson arrival model.
func (g *RNG) Exp(rate float64) float64 {
	return g.r.ExpFloat64() / rate
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool { return g.r.Float64() < p }

// Binomial returns a Binomial(n, p) sample: the paper's model for the
// replication grade when n_fltr filters match independently with
// probability p_match. Direct summation is O(n) and fine for the filter
// counts in the study (n <= a few thousand); larger n uses a normal
// approximation cutover.
func (g *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// For large n the exact loop is too slow; the normal approximation with
	// continuity correction is accurate when np(1-p) is large.
	if n > 10000 && float64(n)*p*(1-p) > 100 {
		mean := float64(n) * p
		sd := math.Sqrt(float64(n) * p * (1 - p))
		k := int(math.Round(mean + sd*g.r.NormFloat64()))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	k := 0
	for i := 0; i < n; i++ {
		if g.r.Float64() < p {
			k++
		}
	}
	return k
}

// Gamma returns a Gamma(shape, scale) sample via Marsaglia–Tsang, used to
// generate service times with a prescribed coefficient of variation.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := g.r.Float64()
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Summary accumulates observations for mean/variance/quantile reporting.
type Summary struct {
	values []float64
	sorted bool
}

// NewSummary returns an empty summary.
func NewSummary() *Summary { return &Summary{} }

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the sample mean.
func (s *Summary) Mean() (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values)), nil
}

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() (float64, error) {
	if len(s.values) < 2 {
		return 0, fmt.Errorf("%w: need at least 2 observations", ErrEmpty)
	}
	mean, err := s.Mean()
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return ss / float64(len(s.values)-1), nil
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() (float64, error) {
	v, err := s.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// CVar returns the coefficient of variation (stddev/mean).
func (s *Summary) CVar() (float64, error) {
	mean, err := s.Mean()
	if err != nil {
		return 0, err
	}
	if mean == 0 {
		return 0, errors.New("stats: zero mean, CVar undefined")
	}
	sd, err := s.StdDev()
	if err != nil {
		return 0, err
	}
	return sd / mean, nil
}

// Quantile returns the p-quantile (0 <= p <= 1) using linear interpolation
// between order statistics (type 7, the common default).
func (s *Summary) Quantile(p float64) (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", p)
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if len(s.values) == 1 {
		return s.values[0], nil
	}
	h := p * float64(len(s.values)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s.values) {
		return s.values[len(s.values)-1], nil
	}
	frac := h - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac, nil
}

// FractionAtOrBelow returns the empirical CDF at x: the fraction of
// observations <= x (0 with no observations). FractionAtOrBelow(0) on a
// waiting-time sample is 1 - P(W > 0), the empirical no-delay
// probability the M^X/G/1 conformance legs check.
func (s *Summary) FractionAtOrBelow(x float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	return float64(sort.SearchFloat64s(s.values, math.Nextafter(x, math.Inf(1)))) /
		float64(len(s.values))
}

// ConfidenceInterval returns the half-width of the level-confidence
// interval for the mean using the normal approximation (the paper notes
// confidence intervals are "very narrow even for a few runs", so the
// normal approximation is adequate).
func (s *Summary) ConfidenceInterval(level float64) (float64, error) {
	if level <= 0 || level >= 1 {
		return 0, fmt.Errorf("stats: confidence level %g outside (0,1)", level)
	}
	sd, err := s.StdDev()
	if err != nil {
		return 0, err
	}
	z, err := NormalQuantile(0.5 + level/2)
	if err != nil {
		return 0, err
	}
	return z * sd / math.Sqrt(float64(len(s.values))), nil
}

// NormalQuantile returns the standard normal quantile for p in (0,1).
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: normal quantile %g outside (0,1)", p)
	}
	x, err := specfunc.ErfInv(2*p - 1)
	if err != nil {
		return 0, err
	}
	return math.Sqrt2 * x, nil
}

// Moments computes the first three raw sample moments of the values — the
// inputs the M/G/1 formulas need when fed from simulation instead of a
// closed-form replication model.
func Moments(values []float64) (m1, m2, m3 float64, err error) {
	if len(values) == 0 {
		return 0, 0, 0, ErrEmpty
	}
	n := float64(len(values))
	for _, v := range values {
		m1 += v
		m2 += v * v
		m3 += v * v * v
	}
	return m1 / n, m2 / n, m3 / n, nil
}
