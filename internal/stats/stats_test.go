package stats

import (
	"errors"
	"math"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary()
	if _, err := s.Mean(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Mean err = %v", err)
	}
	if _, err := s.Quantile(0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Quantile err = %v", err)
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	mean, err := s.Mean()
	if err != nil || mean != 5 {
		t.Errorf("Mean = %g, %v", mean, err)
	}
	// Sample variance of the classic dataset: population var is 4, sample
	// var is 32/7.
	v, err := s.Variance()
	if err != nil || math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %g, %v", v, err)
	}
	sd, err := s.StdDev()
	if err != nil || math.Abs(sd-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %g, %v", sd, err)
	}
	cv, err := s.CVar()
	if err != nil || math.Abs(cv-sd/5) > 1e-12 {
		t.Errorf("CVar = %g, %v", cv, err)
	}
}

func TestQuantile(t *testing.T) {
	s := NewSummary()
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 1},
		{p: 1, want: 100},
		{p: 0.5, want: 50.5},
		{p: 0.99, want: 99.01},
	}
	for _, tt := range tests {
		got, err := s.Quantile(tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if _, err := s.Quantile(1.5); err == nil {
		t.Error("out-of-range quantile accepted")
	}
	single := NewSummary()
	single.Add(7)
	if q, err := single.Quantile(0.9); err != nil || q != 7 {
		t.Errorf("single-value quantile = %g, %v", q, err)
	}
}

func TestQuantileAfterAdd(t *testing.T) {
	// Adding after a quantile query must re-sort.
	s := NewSummary()
	s.Add(10)
	s.Add(20)
	if _, err := s.Quantile(0.5); err != nil {
		t.Fatal(err)
	}
	s.Add(0)
	q, err := s.Quantile(0)
	if err != nil || q != 0 {
		t.Errorf("Quantile(0) after Add = %g, %v", q, err)
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{p: 0.5, want: 0},
		{p: 0.975, want: 1.959964},
		{p: 0.995, want: 2.575829},
		{p: 0.9999, want: 3.719016},
	}
	for _, tt := range tests {
		got, err := NormalQuantile(tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("NormalQuantile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	for _, bad := range []float64{0, 1, -1, 2} {
		if _, err := NormalQuantile(bad); err == nil {
			t.Errorf("NormalQuantile(%g) accepted", bad)
		}
	}
}

func TestConfidenceInterval(t *testing.T) {
	s := NewSummary()
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 10))
	}
	half, err := s.ConfidenceInterval(0.95)
	if err != nil {
		t.Fatal(err)
	}
	sd, _ := s.StdDev()
	want := 1.959964 * sd / 10
	if math.Abs(half-want) > 1e-4 {
		t.Errorf("CI = %g, want %g", half, want)
	}
	if _, err := s.ConfidenceInterval(1.5); err == nil {
		t.Error("bad level accepted")
	}
}

func TestRNGExp(t *testing.T) {
	g := NewRNG(1)
	const n = 200000
	const rate = 4.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp mean = %g, want %g", mean, 1/rate)
	}
}

func TestRNGBinomialMoments(t *testing.T) {
	g := NewRNG(2)
	const n = 50
	const p = 0.3
	const samples = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		k := float64(g.Binomial(n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if math.Abs(mean-n*p) > 0.1 {
		t.Errorf("Binomial mean = %g, want %g", mean, float64(n)*p)
	}
	if math.Abs(variance-n*p*(1-p)) > 0.3 {
		t.Errorf("Binomial variance = %g, want %g", variance, n*p*(1-p))
	}
}

func TestRNGBinomialEdges(t *testing.T) {
	g := NewRNG(3)
	if g.Binomial(0, 0.5) != 0 || g.Binomial(10, 0) != 0 {
		t.Error("degenerate binomial not 0")
	}
	if g.Binomial(10, 1) != 10 {
		t.Error("p=1 binomial not n")
	}
	// Large-n normal approximation path stays in range.
	for i := 0; i < 100; i++ {
		k := g.Binomial(1000000, 0.5)
		if k < 0 || k > 1000000 {
			t.Fatalf("binomial out of range: %d", k)
		}
	}
}

func TestRNGGammaMoments(t *testing.T) {
	g := NewRNG(4)
	const shape, scale = 3.0, 2.0
	const samples = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < samples; i++ {
		x := g.Gamma(shape, scale)
		sum += x
		sumSq += x * x
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	if math.Abs(mean-shape*scale)/(shape*scale) > 0.02 {
		t.Errorf("Gamma mean = %g, want %g", mean, shape*scale)
	}
	if math.Abs(variance-shape*scale*scale)/(shape*scale*scale) > 0.05 {
		t.Errorf("Gamma variance = %g, want %g", variance, shape*scale*scale)
	}
}

func TestRNGGammaSmallShape(t *testing.T) {
	g := NewRNG(5)
	const shape, scale = 0.5, 1.0
	const samples = 200000
	sum := 0.0
	for i := 0; i < samples; i++ {
		x := g.Gamma(shape, scale)
		if x < 0 {
			t.Fatalf("negative gamma sample %g", x)
		}
		sum += x
	}
	mean := sum / samples
	if math.Abs(mean-shape*scale)/(shape*scale) > 0.03 {
		t.Errorf("Gamma(0.5) mean = %g, want %g", mean, shape*scale)
	}
}

func TestRNGDeterministicForSeed(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestMoments(t *testing.T) {
	m1, m2, m3, err := Moments([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != 2 || m2 != (1+4+9)/3.0 || m3 != (1+8+27)/3.0 {
		t.Errorf("Moments = %g %g %g", m1, m2, m3)
	}
	if _, _, _, err := Moments(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty Moments err = %v", err)
	}
}

func TestBernoulli(t *testing.T) {
	g := NewRNG(6)
	hits := 0
	const samples = 100000
	for i := 0; i < samples; i++ {
		if g.Bernoulli(0.25) {
			hits++
		}
	}
	frac := float64(hits) / samples
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) frequency = %g", frac)
	}
}
