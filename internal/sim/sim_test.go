package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/mg1"
	"repro/internal/replication"
	"repro/internal/stats"
)

func TestCalendarOrdering(t *testing.T) {
	c := NewCalendar()
	var order []int
	add := func(delay float64, id int) {
		t.Helper()
		if err := c.Schedule(delay, func() { order = append(order, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(3, 3)
	add(1, 1)
	add(2, 2)
	add(1, 11) // same time as id 1: FIFO tie-break
	for c.Step() {
	}
	want := []int{1, 11, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if c.Now() != 3 {
		t.Errorf("Now = %g", c.Now())
	}
}

func TestCalendarNestedScheduling(t *testing.T) {
	c := NewCalendar()
	hits := 0
	var tick func()
	tick = func() {
		hits++
		if hits < 5 {
			if err := c.Schedule(1, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if err := c.Schedule(1, tick); err != nil {
		t.Fatal(err)
	}
	n := c.Drain(100)
	if n != 5 || hits != 5 {
		t.Errorf("events=%d hits=%d", n, hits)
	}
	if c.Now() != 5 {
		t.Errorf("Now = %g, want 5", c.Now())
	}
}

func TestCalendarRunUntil(t *testing.T) {
	c := NewCalendar()
	hits := 0
	for i := 1; i <= 10; i++ {
		if err := c.Schedule(float64(i), func() { hits++ }); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RunUntil(5.5); err != nil {
		t.Fatal(err)
	}
	if hits != 5 {
		t.Errorf("hits = %d, want 5", hits)
	}
	if c.Now() != 5.5 {
		t.Errorf("Now = %g", c.Now())
	}
	if err := c.RunUntil(1); !errors.Is(err, ErrSim) {
		t.Errorf("backwards RunUntil err = %v", err)
	}
	if c.Len() != 5 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCalendarScheduleErrors(t *testing.T) {
	c := NewCalendar()
	if err := c.Schedule(-1, func() {}); !errors.Is(err, ErrSim) {
		t.Errorf("negative delay err = %v", err)
	}
	if err := c.Schedule(math.NaN(), func() {}); !errors.Is(err, ErrSim) {
		t.Errorf("NaN delay err = %v", err)
	}
	if err := c.Schedule(1, nil); !errors.Is(err, ErrSim) {
		t.Errorf("nil fn err = %v", err)
	}
}

func TestSimulateMM1AgainstTheory(t *testing.T) {
	// M/M/1 at rho = 0.8: E[W] = rho/(1-rho) * E[B] = 4 * E[B].
	const meanB = 0.01
	const rho = 0.8
	svc, err := ExponentialService(meanB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateMG1(MG1Config{
		Lambda:    rho / meanB,
		Service:   svc,
		Customers: 400000,
		Warmup:    20000,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	meanW, err := res.Waits.Mean()
	if err != nil {
		t.Fatal(err)
	}
	want := rho / (1 - rho) * meanB
	if math.Abs(meanW-want)/want > 0.05 {
		t.Errorf("simulated E[W] = %g, theory %g (5%% tolerance)", meanW, want)
	}
	if math.Abs(res.ObservedRho-rho) > 0.03 {
		t.Errorf("observed rho = %g, want %g", res.ObservedRho, rho)
	}
	if math.Abs(res.ObservedMeanService-meanB)/meanB > 0.03 {
		t.Errorf("observed E[B] = %g, want %g", res.ObservedMeanService, meanB)
	}
}

func TestSimulateMD1AgainstTheory(t *testing.T) {
	// M/D/1 at rho = 0.5: E[W] = rho*E[B]/(2(1-rho)) = 0.5*E[B].
	const meanB = 0.02
	svc, err := DeterministicService(meanB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateMG1(MG1Config{
		Lambda:    0.5 / meanB,
		Service:   svc,
		Customers: 200000,
		Warmup:    10000,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	meanW, err := res.Waits.Mean()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * meanB / (2 * 0.5)
	if math.Abs(meanW-want)/want > 0.05 {
		t.Errorf("simulated E[W] = %g, theory %g", meanW, want)
	}
}

func TestSimulateMG1Errors(t *testing.T) {
	svc, err := DeterministicService(1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []MG1Config{
		{Lambda: 0, Service: svc, Customers: 10},
		{Lambda: 1, Service: nil, Customers: 10},
		{Lambda: 1, Service: svc, Customers: 0},
		{Lambda: 1, Service: svc, Customers: 10, Warmup: 10},
		{Lambda: 1, Service: svc, Customers: 10, Warmup: -1},
	}
	for i, cfg := range cases {
		if _, err := SimulateMG1(cfg); !errors.Is(err, ErrSim) {
			t.Errorf("case %d err = %v, want ErrSim", i, err)
		}
	}
	bad := MG1Config{
		Lambda:    1,
		Service:   func(*stats.RNG) float64 { return -1 },
		Customers: 10,
	}
	if _, err := SimulateMG1(bad); !errors.Is(err, ErrSim) {
		t.Errorf("negative service err = %v", err)
	}
}

func TestGammaApproximationAgainstSimulation(t *testing.T) {
	// Experiment X2 of DESIGN.md: the paper's Gamma approximation of the
	// waiting-time distribution (Eq. 20) against a discrete-event M/G/1
	// simulation, at rho = 0.9 for a binomial replication grade.
	model := core.TableICorrelationID
	r, err := replication.NewBinomial(40, 0.3) // E[R] = 12
	if err != nil {
		t.Fatal(err)
	}
	const nFltr = 45
	cfg := BrokerConfig{Model: model, NFltr: nFltr, R: r, Seed: 3}

	meanB := model.MeanServiceTime(nFltr, r.Mean())
	const rho = 0.9
	lambda := rho / meanB

	simRes, err := SimulateWaiting(cfg, lambda, 500000, 25000)
	if err != nil {
		t.Fatal(err)
	}

	moments, err := mg1.MomentsFromReplication(model.ConstantPart(nFltr), model.TTx, r)
	if err != nil {
		t.Fatal(err)
	}
	q, err := mg1.NewQueue(lambda, moments)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := q.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}

	// Compare mean.
	simMean, err := simRes.Waits.Mean()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simMean-q.MeanWait())/q.MeanWait() > 0.08 {
		t.Errorf("sim E[W] = %g, analytic %g", simMean, q.MeanWait())
	}
	// Compare the 99% quantile ("very good approximation results").
	simQ99, err := simRes.Waits.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	anaQ99, err := dist.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(simQ99-anaQ99)/anaQ99 > 0.10 {
		t.Errorf("Q99: sim %g vs Gamma approx %g (>10%% apart)", simQ99, anaQ99)
	}
	// Compare waiting probability P(W>0) ~ rho.
	cc0, err := dist.CCDF(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cc0-rho) > 1e-9 {
		t.Errorf("analytic P(W>0) = %g", cc0)
	}
}

func TestSimulateSaturatedMatchesEq1(t *testing.T) {
	// Saturated virtual-time throughput must match Eq. 1's prediction for
	// a deterministic replication grade.
	model := core.TableICorrelationID
	for _, rVal := range []float64{1, 5, 40} {
		r, err := replication.NewDeterministic(rVal)
		if err != nil {
			t.Fatal(err)
		}
		for _, nFltr := range []int{6, 45, 200} {
			res, err := SimulateSaturated(BrokerConfig{Model: model, NFltr: nFltr, R: r, Seed: 1}, 20000, 1000)
			if err != nil {
				t.Fatal(err)
			}
			wantRecv, wantDisp, wantOverall := model.Throughput(nFltr, rVal)
			if math.Abs(res.Received-wantRecv)/wantRecv > 1e-9 {
				t.Errorf("n=%d R=%g: received %g, want %g", nFltr, rVal, res.Received, wantRecv)
			}
			if math.Abs(res.Dispatched-wantDisp)/math.Max(wantDisp, 1) > 1e-9 {
				t.Errorf("n=%d R=%g: dispatched %g, want %g", nFltr, rVal, res.Dispatched, wantDisp)
			}
			if math.Abs(res.Overall-wantOverall)/wantOverall > 1e-9 {
				t.Errorf("n=%d R=%g: overall %g, want %g", nFltr, rVal, res.Overall, wantOverall)
			}
		}
	}
}

func TestSimulateSaturatedStochasticR(t *testing.T) {
	// With a binomial R, throughput converges to the model's value at
	// E[R].
	model := core.TableIApplicationProperty
	r, err := replication.NewBinomial(40, 0.25) // E[R] = 10
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateSaturated(BrokerConfig{Model: model, NFltr: 50, R: r, Seed: 5}, 200000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	wantRecv, _, _ := model.Throughput(50, 10)
	if math.Abs(res.Received-wantRecv)/wantRecv > 0.01 {
		t.Errorf("received %g, want ~%g", res.Received, wantRecv)
	}
	if math.Abs(res.MeanReplication-10) > 0.2 {
		t.Errorf("mean R = %g, want ~10", res.MeanReplication)
	}
}

func TestSimulateSaturatedErrors(t *testing.T) {
	model := core.TableICorrelationID
	r, err := replication.NewDeterministic(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateSaturated(BrokerConfig{Model: model, NFltr: -1, R: r}, 10, 1); !errors.Is(err, ErrSim) {
		t.Errorf("negative filters err = %v", err)
	}
	if _, err := SimulateSaturated(BrokerConfig{Model: model, NFltr: 1, R: nil}, 10, 1); !errors.Is(err, ErrSim) {
		t.Errorf("nil R err = %v", err)
	}
	if _, err := SimulateSaturated(BrokerConfig{Model: model, NFltr: 1, R: r}, 0, 0); !errors.Is(err, ErrSim) {
		t.Errorf("zero messages err = %v", err)
	}
	if _, err := SimulateSaturated(BrokerConfig{Model: core.CostModel{}, NFltr: 1, R: r}, 10, 1); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestSimulateWaitingRejectsOverload(t *testing.T) {
	model := core.TableICorrelationID
	r, err := replication.NewDeterministic(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := BrokerConfig{Model: model, NFltr: 10, R: r}
	meanB := model.MeanServiceTime(10, 1)
	if _, err := SimulateWaiting(cfg, 1.1/meanB, 1000, 10); !errors.Is(err, ErrSim) {
		t.Errorf("overload err = %v", err)
	}
}

func TestGammaServiceMoments(t *testing.T) {
	svc, err := GammaService(0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(9)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		x := svc(g)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-0.5)/0.5 > 0.02 {
		t.Errorf("mean = %g", mean)
	}
	if math.Abs(sd/mean-0.3)/0.3 > 0.05 {
		t.Errorf("cvar = %g", sd/mean)
	}
	// cvar = 0 degenerates to deterministic.
	det, err := GammaService(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if det(g) != 2 {
		t.Error("cvar=0 sampler not deterministic")
	}
	if _, err := GammaService(-1, 0.1); !errors.Is(err, ErrSim) {
		t.Errorf("negative mean err = %v", err)
	}
}

func BenchmarkSimulateMG1(b *testing.B) {
	svc, err := ExponentialService(0.001)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateMG1(MG1Config{Lambda: 500, Service: svc, Customers: 10000, Warmup: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
