package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/stats"
)

// BrokerConfig describes a virtual-time broker scenario: the cost model
// (e.g. the paper's Table I constants), the number of installed filters
// and the replication-grade model.
type BrokerConfig struct {
	Model core.CostModel
	// NFltr is the number of installed filters (all are checked for every
	// message).
	NFltr int
	// R draws the per-message replication grade.
	R replication.Distribution
	// Seed makes runs reproducible.
	Seed int64
}

// ThroughputResult is the outcome of a saturated run — the quantities the
// paper's measurement section reports.
type ThroughputResult struct {
	// Received is the received message throughput (msgs/s).
	Received float64
	// Dispatched is the dispatched (replicated) throughput (msgs/s).
	Dispatched float64
	// Overall is their sum, as plotted in Fig. 4.
	Overall float64
	// MeanServiceTime is the empirical E[B] in seconds.
	MeanServiceTime float64
	// MeanReplication is the empirical E[R].
	MeanReplication float64
}

// SimulateSaturated reproduces the paper's measurement methodology in
// virtual time: saturated publishers keep the server busy without pause, so
// the received throughput is messages/busy-time. messages is the number of
// simulated messages; warmup messages are excluded, mirroring the 5 s
// warm-up cut.
func SimulateSaturated(cfg BrokerConfig, messages, warmup int) (ThroughputResult, error) {
	if err := cfg.Model.Valid(); err != nil {
		return ThroughputResult{}, err
	}
	if cfg.NFltr < 0 {
		return ThroughputResult{}, fmt.Errorf("%w: nFltr=%d", ErrSim, cfg.NFltr)
	}
	if cfg.R == nil {
		return ThroughputResult{}, fmt.Errorf("%w: nil replication model", ErrSim)
	}
	if messages <= 0 || warmup < 0 || warmup >= messages {
		return ThroughputResult{}, fmt.Errorf("%w: messages=%d warmup=%d", ErrSim, messages, warmup)
	}

	rng := stats.NewRNG(cfg.Seed)
	var busy float64
	var copies uint64
	n := 0
	for i := 0; i < messages; i++ {
		r := cfg.R.Sample(rng)
		b := cfg.Model.MeanServiceTime(cfg.NFltr, float64(r))
		if i < warmup {
			continue
		}
		busy += b
		copies += uint64(r)
		n++
	}
	if busy <= 0 {
		return ThroughputResult{}, fmt.Errorf("%w: zero busy time", ErrSim)
	}
	recv := float64(n) / busy
	disp := float64(copies) / busy
	return ThroughputResult{
		Received:        recv,
		Dispatched:      disp,
		Overall:         recv + disp,
		MeanServiceTime: busy / float64(n),
		MeanReplication: float64(copies) / float64(n),
	}, nil
}

// WaitResult is the outcome of a Poisson-arrivals run.
type WaitResult struct {
	// Waits are the observed waiting times in seconds.
	Waits *stats.Summary
	// ObservedRho is the busy fraction.
	ObservedRho float64
}

// SimulateWaiting runs the broker as an M/G/1 queue in virtual time:
// Poisson arrivals at rate lambda, service time t_rcv + n_fltr*t_fltr +
// R*t_tx with R drawn from the configured model. It returns the observed
// waiting times for comparison against the Gamma approximation.
func SimulateWaiting(cfg BrokerConfig, lambda float64, messages, warmup int) (WaitResult, error) {
	if err := cfg.Model.Valid(); err != nil {
		return WaitResult{}, err
	}
	if cfg.R == nil {
		return WaitResult{}, fmt.Errorf("%w: nil replication model", ErrSim)
	}
	meanB := cfg.Model.MeanServiceTime(cfg.NFltr, cfg.R.Mean())
	if rho := lambda * meanB; rho >= 1 {
		return WaitResult{}, fmt.Errorf("%w: offered rho=%g >= 1", ErrSim, rho)
	}
	res, err := SimulateMG1(MG1Config{
		Lambda: lambda,
		Service: func(rng *stats.RNG) float64 {
			r := cfg.R.Sample(rng)
			return cfg.Model.MeanServiceTime(cfg.NFltr, float64(r))
		},
		Customers: messages,
		Warmup:    warmup,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return WaitResult{}, err
	}
	return WaitResult{Waits: res.Waits, ObservedRho: res.ObservedRho}, nil
}

// GammaService returns a ServiceSampler drawing Gamma-distributed service
// times with the given mean and coefficient of variation — the generic
// service model used in sensitivity experiments.
func GammaService(mean, cvar float64) (ServiceSampler, error) {
	if mean <= 0 || cvar < 0 {
		return nil, fmt.Errorf("%w: mean=%g cvar=%g", ErrSim, mean, cvar)
	}
	if cvar == 0 {
		return func(*stats.RNG) float64 { return mean }, nil
	}
	shape := 1 / (cvar * cvar)
	scale := mean / shape
	return func(rng *stats.RNG) float64 { return rng.Gamma(shape, scale) }, nil
}

// DeterministicService returns a constant service sampler.
func DeterministicService(b float64) (ServiceSampler, error) {
	if b <= 0 || math.IsNaN(b) {
		return nil, fmt.Errorf("%w: service %g", ErrSim, b)
	}
	return func(*stats.RNG) float64 { return b }, nil
}

// ExponentialService returns an exponential service sampler with the given
// mean.
func ExponentialService(mean float64) (ServiceSampler, error) {
	if mean <= 0 || math.IsNaN(mean) {
		return nil, fmt.Errorf("%w: mean %g", ErrSim, mean)
	}
	return func(rng *stats.RNG) float64 { return rng.Exp(1 / mean) }, nil
}
