package sim

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// BatchSampler draws one batch size >= 1.
type BatchSampler func(rng *stats.RNG) int

// MXG1Config parameterizes an M^X/G/1-∞ simulation run: Poisson batch
// arrivals, i.i.d. batch sizes, i.i.d. per-message services.
type MXG1Config struct {
	// LambdaB is the Poisson batch-arrival rate (batches/s).
	LambdaB float64
	// Batch draws per-arrival batch sizes.
	Batch BatchSampler
	// Service draws per-message service times.
	Service ServiceSampler
	// Customers is the number of served messages to simulate. Whole
	// batches are processed, so the run may overshoot by one batch.
	Customers int
	// Warmup is the number of initial messages excluded from statistics.
	Warmup int
	// Seed makes the run reproducible.
	Seed int64
}

// SimulateMXG1 runs an M^X/G/1-∞ queue via the Lindley recursion applied
// at the batch level,
//
//	Wb_{n+1} = max(0, Wb_n + S_n - A_{n+1}),
//
// where S_n is the whole batch's service (the super-customer of the
// analytic model) and Wb the waiting time of the batch's first message.
// The j-th message of a batch waits Wb plus the services of its j-1
// batch-mates ahead, which is exactly the per-message FIFO waiting time
// the closed forms describe. Results reuse MG1Result.
func SimulateMXG1(cfg MXG1Config) (MG1Result, error) {
	if cfg.LambdaB <= 0 || math.IsNaN(cfg.LambdaB) {
		return MG1Result{}, fmt.Errorf("%w: lambdaB=%g", ErrSim, cfg.LambdaB)
	}
	if cfg.Batch == nil {
		return MG1Result{}, fmt.Errorf("%w: nil batch sampler", ErrSim)
	}
	if cfg.Service == nil {
		return MG1Result{}, fmt.Errorf("%w: nil service sampler", ErrSim)
	}
	if cfg.Customers <= 0 {
		return MG1Result{}, fmt.Errorf("%w: customers=%d", ErrSim, cfg.Customers)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Customers {
		return MG1Result{}, fmt.Errorf("%w: warmup=%d of %d", ErrSim, cfg.Warmup, cfg.Customers)
	}

	rng := stats.NewRNG(cfg.Seed)
	waits := stats.NewSummary()

	var (
		wb          float64 // waiting time of the current batch's head
		clock       float64 // arrival time of the current batch
		totalWork   float64
		lastDepart  float64
		sumService  float64
		numObserved int
		served      int
	)
	for batchNo := 0; served < cfg.Customers; batchNo++ {
		if batchNo > 0 {
			interArrival := rng.Exp(cfg.LambdaB)
			clock += interArrival
			wb -= interArrival
			if wb < 0 {
				wb = 0
			}
		}
		k := cfg.Batch(rng)
		if k < 1 {
			return MG1Result{}, fmt.Errorf("%w: batch sample %d", ErrSim, k)
		}
		var prefix float64 // services of the batch-mates already served
		for j := 0; j < k; j++ {
			b := cfg.Service(rng)
			if b < 0 || math.IsNaN(b) {
				return MG1Result{}, fmt.Errorf("%w: service sample %g", ErrSim, b)
			}
			if served >= cfg.Warmup {
				waits.Add(wb + prefix)
				sumService += b
				numObserved++
			}
			served++
			prefix += b
			totalWork += b
		}
		depart := clock + wb + prefix
		if depart > lastDepart {
			lastDepart = depart
		}
		wb += prefix
	}

	res := MG1Result{Waits: waits}
	if lastDepart > 0 {
		res.ObservedRho = totalWork / lastDepart
	}
	if numObserved > 0 {
		res.ObservedMeanService = sumService / float64(numObserved)
	}
	return res, nil
}
