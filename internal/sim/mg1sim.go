package sim

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ServiceSampler draws one service time in seconds.
type ServiceSampler func(rng *stats.RNG) float64

// MG1Config parameterizes an M/G/1-∞ simulation run.
type MG1Config struct {
	// Lambda is the Poisson arrival rate (msgs/s).
	Lambda float64
	// Service draws per-message service times.
	Service ServiceSampler
	// Customers is the number of served messages to simulate.
	Customers int
	// Warmup is the number of initial messages excluded from statistics —
	// the simulation analogue of the paper's 5 s measurement cut-off.
	Warmup int
	// Seed makes the run reproducible.
	Seed int64
}

// MG1Result carries the collected statistics of a run.
type MG1Result struct {
	// Waits holds the observed waiting times (post-warmup).
	Waits *stats.Summary
	// ObservedRho is the fraction of time the server was busy.
	ObservedRho float64
	// ObservedMeanService is the empirical E[B].
	ObservedMeanService float64
}

// SimulateMG1 runs an M/G/1-∞ queue via the exact Lindley recursion
//
//	W_{n+1} = max(0, W_n + B_n - A_{n+1}),
//
// which yields the FIFO waiting time of every message without an event
// calendar. The busy fraction is estimated from the total work and the
// span of virtual time.
func SimulateMG1(cfg MG1Config) (MG1Result, error) {
	if cfg.Lambda <= 0 || math.IsNaN(cfg.Lambda) {
		return MG1Result{}, fmt.Errorf("%w: lambda=%g", ErrSim, cfg.Lambda)
	}
	if cfg.Service == nil {
		return MG1Result{}, fmt.Errorf("%w: nil service sampler", ErrSim)
	}
	if cfg.Customers <= 0 {
		return MG1Result{}, fmt.Errorf("%w: customers=%d", ErrSim, cfg.Customers)
	}
	if cfg.Warmup < 0 || cfg.Warmup >= cfg.Customers {
		return MG1Result{}, fmt.Errorf("%w: warmup=%d of %d", ErrSim, cfg.Warmup, cfg.Customers)
	}

	rng := stats.NewRNG(cfg.Seed)
	waits := stats.NewSummary()

	var (
		wait        float64 // waiting time of the current message
		clock       float64 // arrival time of the current message
		totalWork   float64
		lastDepart  float64
		sumService  float64
		numObserved int
	)
	for i := 0; i < cfg.Customers; i++ {
		if i > 0 {
			interArrival := rng.Exp(cfg.Lambda)
			clock += interArrival
			wait -= interArrival
			if wait < 0 {
				wait = 0
			}
		}
		b := cfg.Service(rng)
		if b < 0 || math.IsNaN(b) {
			return MG1Result{}, fmt.Errorf("%w: service sample %g", ErrSim, b)
		}
		if i >= cfg.Warmup {
			waits.Add(wait)
			sumService += b
			numObserved++
		}
		totalWork += b
		depart := clock + wait + b
		if depart > lastDepart {
			lastDepart = depart
		}
		wait += b
	}

	res := MG1Result{Waits: waits}
	if lastDepart > 0 {
		res.ObservedRho = totalWork / lastDepart
	}
	if numObserved > 0 {
		res.ObservedMeanService = sumService / float64(numObserved)
	}
	return res, nil
}
