// Package sim provides the discrete-event simulation substrate of the
// reproduction: a deterministic event calendar, an M/G/1-∞ queue simulator
// used to cross-validate the paper's Gamma approximation (Section IV-B.4),
// and a virtual-time broker simulator whose per-message service times follow
// the paper's calibrated cost model, so the measurement figures can be
// regenerated with the paper's Table I constants on any hardware.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrSim is the base error of the simulator.
var ErrSim = errors.New("sim: invalid simulation parameters")

// event is a scheduled callback.
type event struct {
	at  float64
	seq uint64 // FIFO tie-break for simultaneous events
	fn  func()
}

// eventHeap orders events by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(event)
	if !ok {
		panic("sim: push of non-event")
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Calendar is a deterministic discrete-event calendar. Virtual time is a
// float64 in seconds.
type Calendar struct {
	now    float64
	seq    uint64
	events eventHeap
}

// NewCalendar returns an empty calendar at time zero.
func NewCalendar() *Calendar { return &Calendar{} }

// Now returns the current virtual time.
func (c *Calendar) Now() float64 { return c.now }

// Len returns the number of pending events.
func (c *Calendar) Len() int { return len(c.events) }

// Schedule enqueues fn to run after delay (>= 0) of virtual time.
func (c *Calendar) Schedule(delay float64, fn func()) error {
	if delay < 0 || math.IsNaN(delay) || math.IsInf(delay, 0) {
		return fmt.Errorf("%w: delay %g", ErrSim, delay)
	}
	if fn == nil {
		return fmt.Errorf("%w: nil event function", ErrSim)
	}
	c.seq++
	heap.Push(&c.events, event{at: c.now + delay, seq: c.seq, fn: fn})
	return nil
}

// Step runs the next event. It reports false when the calendar is empty.
func (c *Calendar) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	ev, ok := heap.Pop(&c.events).(event)
	if !ok {
		return false
	}
	c.now = ev.at
	ev.fn()
	return true
}

// RunUntil executes events with timestamps <= t and advances time to t.
func (c *Calendar) RunUntil(t float64) error {
	if t < c.now {
		return fmt.Errorf("%w: RunUntil(%g) before now=%g", ErrSim, t, c.now)
	}
	for len(c.events) > 0 && c.events[0].at <= t {
		c.Step()
	}
	c.now = t
	return nil
}

// Drain runs events until the calendar is empty or maxEvents is reached.
// It returns the number of events executed.
func (c *Calendar) Drain(maxEvents int) int {
	n := 0
	for n < maxEvents && c.Step() {
		n++
	}
	return n
}
