package filter

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/jms"
)

func msgWithCorrID(t testing.TB, id string) *jms.Message {
	t.Helper()
	m := jms.NewMessage("t")
	if err := m.SetCorrelationID(id); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAllMatchesEverything(t *testing.T) {
	f := All{}
	if !f.Matches(jms.NewMessage("t")) {
		t.Error("All must match any message")
	}
	if f.Kind() != KindTopic {
		t.Errorf("Kind = %v, want KindTopic", f.Kind())
	}
	if f.String() != "TRUE" {
		t.Errorf("String = %q", f.String())
	}
}

func TestCorrelationIDExact(t *testing.T) {
	f, err := NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(msgWithCorrID(t, "#0")) {
		t.Error("exact match failed")
	}
	if f.Matches(msgWithCorrID(t, "#1")) {
		t.Error("exact mismatch matched")
	}
	if f.Matches(jms.NewMessage("t")) {
		t.Error("empty correlation ID matched non-empty filter")
	}
	if f.Kind() != KindCorrelationID {
		t.Errorf("Kind = %v", f.Kind())
	}
	if f.String() != "#0" {
		t.Errorf("String = %q", f.String())
	}
}

func TestCorrelationIDRange(t *testing.T) {
	// The paper's example: wildcard filtering in the form of ranges like
	// [7;13].
	f, err := NewCorrelationID("[7;13]")
	if err != nil {
		t.Fatal(err)
	}
	for i := 7; i <= 13; i++ {
		if !f.Matches(msgWithCorrID(t, strconv.Itoa(i))) {
			t.Errorf("range [7;13] should match %d", i)
		}
	}
	for _, id := range []string{"6", "14", "-1", "x", "", "7x"} {
		if f.Matches(msgWithCorrID(t, id)) {
			t.Errorf("range [7;13] should not match %q", id)
		}
	}
}

func TestCorrelationIDRangeWithAffixes(t *testing.T) {
	f, err := NewCorrelationID("dev-[100;200]-eu")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		id   string
		want bool
	}{
		{id: "dev-100-eu", want: true},
		{id: "dev-150-eu", want: true},
		{id: "dev-200-eu", want: true},
		{id: "dev-99-eu", want: false},
		{id: "dev-201-eu", want: false},
		{id: "dev-150-us", want: false},
		{id: "x-150-eu", want: false},
		{id: "dev--eu", want: false},
	}
	for _, tt := range tests {
		if got := f.Matches(msgWithCorrID(t, tt.id)); got != tt.want {
			t.Errorf("Matches(%q) = %v, want %v", tt.id, got, tt.want)
		}
	}
}

func TestCorrelationIDRangeNegativeBounds(t *testing.T) {
	f, err := NewCorrelationID("[-5;5]")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(msgWithCorrID(t, "-3")) {
		t.Error("[-5;5] should match -3")
	}
	if f.Matches(msgWithCorrID(t, "-6")) {
		t.Error("[-5;5] should not match -6")
	}
}

func TestCorrelationIDBadRanges(t *testing.T) {
	for _, expr := range []string{"[7]", "[a;b]", "[1;", "]1;2[", "[13;7]", "[;]", "[1;2;3]x]"} {
		t.Run(expr, func(t *testing.T) {
			_, err := NewCorrelationID(expr)
			if !errors.Is(err, ErrBadRange) {
				t.Errorf("NewCorrelationID(%q) err = %v, want ErrBadRange", expr, err)
			}
		})
	}
}

func TestCorrelationIDTooLong(t *testing.T) {
	long := make([]byte, jms.MaxCorrelationIDLen+1)
	for i := range long {
		long[i] = 'a'
	}
	if _, err := NewCorrelationID(string(long)); err == nil {
		t.Error("over-long expression accepted")
	}
}

func TestCorrelationIDGlob(t *testing.T) {
	tests := []struct {
		expr string
		id   string
		want bool
	}{
		{expr: "dev-*", id: "dev-1", want: true},
		{expr: "dev-*", id: "dev-", want: true},
		{expr: "dev-*", id: "de", want: false},
		{expr: "*-eu", id: "dev-1-eu", want: true},
		{expr: "*-eu", id: "dev-1-us", want: false},
		{expr: "a?c", id: "abc", want: true},
		{expr: "a?c", id: "ac", want: false},
		{expr: "*", id: "", want: true},
		{expr: "*", id: "anything", want: true},
		{expr: "a*b*c", id: "aXbYc", want: true},
		{expr: "a*b*c", id: "acb", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.expr+"/"+tt.id, func(t *testing.T) {
			f, err := NewCorrelationID(tt.expr)
			if err != nil {
				t.Fatal(err)
			}
			if got := f.Matches(msgWithCorrID(t, tt.id)); got != tt.want {
				t.Errorf("Matches(%q ~ %q) = %v, want %v", tt.id, tt.expr, got, tt.want)
			}
		})
	}
}

// TestCorrelationIDRangeProperty: for random in-range values the filter
// matches, for out-of-range values it does not.
func TestCorrelationIDRangeProperty(t *testing.T) {
	f, err := NewCorrelationID("[0;1000]")
	if err != nil {
		t.Fatal(err)
	}
	check := func(n int16) bool {
		m := jms.NewMessage("t")
		if err := m.SetCorrelationID(strconv.Itoa(int(n))); err != nil {
			return false
		}
		want := n >= 0 && n <= 1000
		return f.Matches(m) == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFilter(t *testing.T) {
	f, err := NewProperty("prop = 0")
	if err != nil {
		t.Fatal(err)
	}
	m := jms.NewMessage("t")
	if err := m.SetInt32Property("prop", 0); err != nil {
		t.Fatal(err)
	}
	if !f.Matches(m) {
		t.Error("prop=0 should match")
	}
	if err := m.SetInt32Property("prop", 1); err != nil {
		t.Fatal(err)
	}
	if f.Matches(m) {
		t.Error("prop=1 should not match")
	}
	if f.Kind() != KindProperty {
		t.Errorf("Kind = %v", f.Kind())
	}
	if f.String() != "prop = 0" {
		t.Errorf("String = %q", f.String())
	}
	if f.Selector() == nil {
		t.Error("Selector() = nil")
	}
}

func TestPropertyFilterUnknownRejects(t *testing.T) {
	f := MustProperty("missing = 1")
	if f.Matches(jms.NewMessage("t")) {
		t.Error("UNKNOWN must reject")
	}
}

func TestNewPropertyError(t *testing.T) {
	if _, err := NewProperty("prop ="); err == nil {
		t.Error("invalid selector accepted")
	}
}

func TestMustPropertyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProperty did not panic")
		}
	}()
	MustProperty("bad =")
}

func TestAndOrComposite(t *testing.T) {
	corr, err := NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	prop := MustProperty("region = 'EU'")

	and, err := NewAnd(corr, prop)
	if err != nil {
		t.Fatal(err)
	}
	or, err := NewOr(corr, prop)
	if err != nil {
		t.Fatal(err)
	}

	mBoth := msgWithCorrID(t, "#0")
	if err := mBoth.SetStringProperty("region", "EU"); err != nil {
		t.Fatal(err)
	}
	mCorrOnly := msgWithCorrID(t, "#0")
	mPropOnly := jms.NewMessage("t")
	if err := mPropOnly.SetStringProperty("region", "EU"); err != nil {
		t.Fatal(err)
	}
	mNeither := jms.NewMessage("t")

	tests := []struct {
		name            string
		m               *jms.Message
		wantAnd, wantOr bool
	}{
		{name: "both", m: mBoth, wantAnd: true, wantOr: true},
		{name: "corr only", m: mCorrOnly, wantAnd: false, wantOr: true},
		{name: "prop only", m: mPropOnly, wantAnd: false, wantOr: true},
		{name: "neither", m: mNeither, wantAnd: false, wantOr: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := and.Matches(tt.m); got != tt.wantAnd {
				t.Errorf("AND = %v, want %v", got, tt.wantAnd)
			}
			if got := or.Matches(tt.m); got != tt.wantOr {
				t.Errorf("OR = %v, want %v", got, tt.wantOr)
			}
		})
	}

	if and.Kind() != KindComposite || or.Kind() != KindComposite {
		t.Error("composite Kind mismatch")
	}
	if and.String() != "(#0) AND (region = 'EU')" {
		t.Errorf("AND String = %q", and.String())
	}
	if or.String() != "(#0) OR (region = 'EU')" {
		t.Errorf("OR String = %q", or.String())
	}
}

func TestEmptyComposites(t *testing.T) {
	if _, err := NewAnd(); err == nil {
		t.Error("empty AND accepted")
	}
	if _, err := NewOr(); err == nil {
		t.Error("empty OR accepted")
	}
}

func TestCompositeCopiesChildren(t *testing.T) {
	corr, err := NewCorrelationID("#0")
	if err != nil {
		t.Fatal(err)
	}
	children := []Filter{corr}
	and, err := NewAnd(children...)
	if err != nil {
		t.Fatal(err)
	}
	children[0] = All{} // must not affect the composite
	if and.Matches(msgWithCorrID(t, "#1")) {
		t.Error("composite shares caller's slice")
	}
}

func TestKindString(t *testing.T) {
	if KindTopic.String() != "topic" || KindCorrelationID.String() != "correlationID" ||
		KindProperty.String() != "property" || KindComposite.String() != "composite" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown Kind.String mismatch")
	}
}

func BenchmarkCorrelationIDExact(b *testing.B) {
	f, err := NewCorrelationID("#0")
	if err != nil {
		b.Fatal(err)
	}
	m := msgWithCorrID(b, "#0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Matches(m) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkCorrelationIDRange(b *testing.B) {
	f, err := NewCorrelationID("[0;1000000]")
	if err != nil {
		b.Fatal(err)
	}
	m := msgWithCorrID(b, "512345")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Matches(m) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkPropertyFilter(b *testing.B) {
	f := MustProperty("prop = 0")
	m := jms.NewMessage("t")
	if err := m.SetInt32Property("prop", 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Matches(m) {
			b.Fatal("no match")
		}
	}
}

func ExampleNewCorrelationID() {
	f, _ := NewCorrelationID("[7;13]")
	m := jms.NewMessage("updates")
	_ = m.SetCorrelationID("9")
	fmt.Println(f.Matches(m))
	// Output: true
}
