// Package filter implements the message selection mechanisms studied in the
// paper: topic selection, correlation-ID filters (with wildcard ranges such
// as [7;13]), and application-property filters (JMS selectors). Each
// subscriber installs exactly one filter; the broker tests every installed
// filter against every received message, which is the n_fltr * t_fltr cost
// term of the paper's processing-time model.
package filter

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/jms"
	"repro/internal/selector"
)

// Kind classifies a filter by the paper's three selection mechanisms. The
// kinds have different per-filter evaluation costs (Table I of the paper).
type Kind int

// Filter kinds, ordered by increasing evaluation cost.
const (
	// KindTopic matches all messages of the topic (no filtering work).
	KindTopic Kind = iota + 1
	// KindCorrelationID matches on the 128-byte correlation ID header.
	KindCorrelationID
	// KindProperty matches a JMS selector over the property section.
	KindProperty
	// KindComposite combines several filters with AND/OR.
	KindComposite
)

// String returns a short name of the kind.
func (k Kind) String() string {
	switch k {
	case KindTopic:
		return "topic"
	case KindCorrelationID:
		return "correlationID"
	case KindProperty:
		return "property"
	case KindComposite:
		return "composite"
	default:
		return "Kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Filter decides whether a message is forwarded to its subscriber.
type Filter interface {
	// Matches reports whether the message passes the filter.
	Matches(m *jms.Message) bool
	// Kind reports the filter's selection mechanism.
	Kind() Kind
	// String renders the filter rule.
	String() string
}

// ErrBadRange is returned for malformed correlation-ID range expressions.
var ErrBadRange = errors.New("filter: malformed correlation ID range")

// All matches every message of the topic (a subscriber without a filter).
// Dispatching through All corresponds to the paper's no-filter experiments.
type All struct{}

var _ Filter = All{}

// Matches always reports true.
func (All) Matches(*jms.Message) bool { return true }

// Kind returns KindTopic.
func (All) Kind() Kind { return KindTopic }

// String renders the match-all rule.
func (All) String() string { return "TRUE" }

// CorrelationID filters on the message's correlation ID. It supports the
// matching modes the paper describes for FioranoMQ: exact string match and
// wildcard matching with numeric ranges in the form "[7;13]" (matching the
// IDs "7" through "13"), optionally embedded in a literal prefix, plus the
// classic '*' / '?' glob wildcards.
type CorrelationID struct {
	expr string
	// exact is the fast path: non-empty when the expression has no
	// wildcards.
	exact string
	// prefix/suffix surround a numeric range when rangeSet is true.
	prefix, suffix string
	lo, hi         int64
	rangeSet       bool
	// glob is the compiled '*'/'?' pattern when globSet is true.
	glob    []globOp
	globSet bool
}

var _ Filter = (*CorrelationID)(nil)

type globOpKind int

const (
	globLit  globOpKind = iota + 1
	globOne             // ?
	globMany            // *
)

type globOp struct {
	kind globOpKind
	lit  string
}

// NewCorrelationID compiles a correlation-ID filter expression. Supported
// forms:
//
//	"abc"        exact match
//	"pre[7;13]"  numeric range with optional literal prefix/suffix
//	"dev-*"      glob with '*' (any run) and '?' (single character)
func NewCorrelationID(expr string) (*CorrelationID, error) {
	if len(expr) > jms.MaxCorrelationIDLen {
		return nil, fmt.Errorf("filter: correlation ID expression exceeds %d bytes", jms.MaxCorrelationIDLen)
	}
	f := &CorrelationID{expr: expr}

	if open := strings.IndexByte(expr, '['); open >= 0 {
		closeIdx := strings.IndexByte(expr, ']')
		if closeIdx < open {
			return nil, fmt.Errorf("%w: %q", ErrBadRange, expr)
		}
		body := expr[open+1 : closeIdx]
		parts := strings.SplitN(body, ";", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("%w: %q (want [lo;hi])", ErrBadRange, expr)
		}
		lo, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrBadRange, expr, err)
		}
		hi, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrBadRange, expr, err)
		}
		if lo > hi {
			return nil, fmt.Errorf("%w: %q (lo > hi)", ErrBadRange, expr)
		}
		f.prefix = expr[:open]
		f.suffix = expr[closeIdx+1:]
		f.lo, f.hi = lo, hi
		f.rangeSet = true
		return f, nil
	}

	if strings.ContainsAny(expr, "*?") {
		f.glob = compileGlob(expr)
		f.globSet = true
		return f, nil
	}

	f.exact = expr
	return f, nil
}

func compileGlob(pattern string) []globOp {
	var prog []globOp
	var lit []byte
	flush := func() {
		if len(lit) > 0 {
			prog = append(prog, globOp{kind: globLit, lit: string(lit)})
			lit = lit[:0]
		}
	}
	for i := 0; i < len(pattern); i++ {
		switch pattern[i] {
		case '*':
			flush()
			if len(prog) == 0 || prog[len(prog)-1].kind != globMany {
				prog = append(prog, globOp{kind: globMany})
			}
		case '?':
			flush()
			prog = append(prog, globOp{kind: globOne})
		default:
			lit = append(lit, pattern[i])
		}
	}
	flush()
	return prog
}

func globMatch(prog []globOp, s string) bool {
	if len(prog) == 0 {
		return s == ""
	}
	op := prog[0]
	switch op.kind {
	case globLit:
		if len(s) < len(op.lit) || s[:len(op.lit)] != op.lit {
			return false
		}
		return globMatch(prog[1:], s[len(op.lit):])
	case globOne:
		if s == "" {
			return false
		}
		return globMatch(prog[1:], s[1:])
	case globMany:
		if len(prog) == 1 {
			return true
		}
		for i := 0; i <= len(s); i++ {
			if globMatch(prog[1:], s[i:]) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Matches tests the message's correlation ID against the compiled rule.
func (f *CorrelationID) Matches(m *jms.Message) bool {
	id := m.Header.CorrelationID
	switch {
	case f.rangeSet:
		if !strings.HasPrefix(id, f.prefix) || !strings.HasSuffix(id, f.suffix) {
			return false
		}
		mid := id[len(f.prefix) : len(id)-len(f.suffix)]
		n, err := strconv.ParseInt(mid, 10, 64)
		if err != nil {
			return false
		}
		return n >= f.lo && n <= f.hi
	case f.globSet:
		return globMatch(f.glob, id)
	default:
		return id == f.exact
	}
}

// Kind returns KindCorrelationID.
func (f *CorrelationID) Kind() Kind { return KindCorrelationID }

// Exact returns the literal correlation ID the filter matches and true when
// the expression is a plain string (no range, no glob). Exact filters are
// the hash-indexable population of the fast dispatch engine: a single map
// probe replaces their whole linear scan.
func (f *CorrelationID) Exact() (string, bool) {
	if f.rangeSet || f.globSet {
		return "", false
	}
	return f.exact, true
}

// String returns the original expression.
func (f *CorrelationID) String() string { return f.expr }

// Property filters with a JMS selector over the message property section.
type Property struct {
	src  string
	node selector.Node
}

var _ Filter = (*Property)(nil)

// NewProperty parses and compiles a JMS selector string into a filter.
// Constant subexpressions are folded at compile time, shrinking the
// per-message evaluation work on the broker's hot path.
func NewProperty(src string) (*Property, error) {
	node, err := selector.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Property{src: src, node: selector.Fold(node)}, nil
}

// MustProperty is NewProperty but panics on error; for tests and examples.
func MustProperty(src string) *Property {
	f, err := NewProperty(src)
	if err != nil {
		panic(err)
	}
	return f
}

// Matches evaluates the selector; only a TRUE result matches (UNKNOWN
// rejects per the JMS specification).
func (f *Property) Matches(m *jms.Message) bool {
	return selector.Matches(f.node, m)
}

// Kind returns KindProperty.
func (f *Property) Kind() Kind { return KindProperty }

// String returns the selector source.
func (f *Property) String() string { return f.src }

// Selector exposes the parsed AST (for diagnostics).
func (f *Property) Selector() selector.Node { return f.node }

// And matches when every child filter matches. The paper's "complex
// AND-filter rules".
type And struct {
	children []Filter
}

var _ Filter = (*And)(nil)

// NewAnd builds a conjunction of filters. It requires at least one child.
func NewAnd(children ...Filter) (*And, error) {
	if len(children) == 0 {
		return nil, errors.New("filter: AND requires at least one child")
	}
	cs := make([]Filter, len(children))
	copy(cs, children)
	return &And{children: cs}, nil
}

// Matches reports whether all children match.
func (f *And) Matches(m *jms.Message) bool {
	for _, c := range f.children {
		if !c.Matches(m) {
			return false
		}
	}
	return true
}

// Kind returns KindComposite.
func (f *And) Kind() Kind { return KindComposite }

// String renders the conjunction.
func (f *And) String() string { return joinChildren(f.children, " AND ") }

// Or matches when any child filter matches. The paper's "complex OR-filter
// rules".
type Or struct {
	children []Filter
}

var _ Filter = (*Or)(nil)

// NewOr builds a disjunction of filters. It requires at least one child.
func NewOr(children ...Filter) (*Or, error) {
	if len(children) == 0 {
		return nil, errors.New("filter: OR requires at least one child")
	}
	cs := make([]Filter, len(children))
	copy(cs, children)
	return &Or{children: cs}, nil
}

// Matches reports whether any child matches.
func (f *Or) Matches(m *jms.Message) bool {
	for _, c := range f.children {
		if c.Matches(m) {
			return true
		}
	}
	return false
}

// Kind returns KindComposite.
func (f *Or) Kind() Kind { return KindComposite }

// String renders the disjunction.
func (f *Or) String() string { return joinChildren(f.children, " OR ") }

func joinChildren(children []Filter, sep string) string {
	parts := make([]string, len(children))
	for i, c := range children {
		parts[i] = "(" + c.String() + ")"
	}
	return strings.Join(parts, sep)
}
