package jmsperf_test

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	jmsperf "repro"
)

func TestFacadePublishSubscribe(t *testing.T) {
	b := jmsperf.NewBroker(jmsperf.BrokerOptions{})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("t"); err != nil {
		t.Fatal(err)
	}
	f, err := jmsperf.NewSelectorFilter("k = 1")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe("t", f)
	if err != nil {
		t.Fatal(err)
	}
	m := jmsperf.NewMessage("t")
	if err := m.SetInt32Property("k", 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Publish(ctx, m); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAnalysisPipeline(t *testing.T) {
	// The full analysis pipeline through the public surface: replication
	// model -> service moments -> queue -> waiting-time quantile.
	model := jmsperf.TableICorrelationID
	r, err := jmsperf.NewBinomialR(40, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	moments, err := jmsperf.ServiceMomentsFor(model, 45, r)
	if err != nil {
		t.Fatal(err)
	}
	q, err := jmsperf.QueueAtUtilization(0.9, moments)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := q.GammaApprox()
	if err != nil {
		t.Fatal(err)
	}
	q9999, err := dist.Quantile(0.9999)
	if err != nil {
		t.Fatal(err)
	}
	if q9999 <= q.MeanWait() {
		t.Errorf("Q9999 %g <= E[W] %g", q9999, q.MeanWait())
	}
	// NewQueue agrees with QueueAtUtilization.
	q2, err := jmsperf.NewQueue(0.9/moments.M1, moments)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q2.MeanWait()-q.MeanWait()) > 1e-12 {
		t.Error("NewQueue and QueueAtUtilization disagree")
	}
}

func TestFacadeCorrelationFilter(t *testing.T) {
	f, err := jmsperf.NewCorrelationIDFilter("[1;3]")
	if err != nil {
		t.Fatal(err)
	}
	m := jmsperf.NewMessage("t")
	if err := m.SetCorrelationID("2"); err != nil {
		t.Fatal(err)
	}
	if !f.Matches(m) {
		t.Error("range filter should match")
	}
}

func TestFacadeDeterministicR(t *testing.T) {
	r, err := jmsperf.NewDeterministicR(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean() != 5 {
		t.Errorf("Mean = %g", r.Mean())
	}
	sb, err := jmsperf.NewScaledBernoulliR(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Mean() != 5 {
		t.Errorf("scaled Bernoulli mean = %g", sb.Mean())
	}
}

// ExampleCostModel_Capacity demonstrates the paper's headline use: predict
// the maximum message throughput for a planned application scenario.
func ExampleCostModel_Capacity() {
	model := jmsperf.TableICorrelationID
	capacity, _ := model.Capacity(0.9, 100 /* filters */, 1 /* E[R] */)
	fmt.Printf("%.0f msgs/s\n", capacity)
	// Output: 1250 msgs/s
}

// ExampleCostModel_FilterBenefit evaluates Eq. 3: a single correlation-ID
// filter pays off only below a 58.7% match probability.
func ExampleCostModel_FilterBenefit() {
	model := jmsperf.TableICorrelationID
	fmt.Println(model.FilterBenefit(1, 0.5))
	fmt.Println(model.FilterBenefit(1, 0.7))
	// Output:
	// true
	// false
}

// ExampleQueueAtUtilization computes the paper's "quasi upper bound" on
// the message waiting time at 90% server utilization.
func ExampleQueueAtUtilization() {
	moments := jmsperf.ServiceMoments{M1: 0.02, M2: 0.02 * 0.02, M3: 0.02 * 0.02 * 0.02}
	q, _ := jmsperf.QueueAtUtilization(0.9, moments)
	dist, _ := q.GammaApprox()
	q9999, _ := dist.Quantile(0.9999)
	fmt.Printf("Q99.99 = %.1f * E[B]\n", q9999/moments.M1)
	// Output: Q99.99 = 43.4 * E[B]
}
