// Package jmsperf reproduces "Analysis of the Message Waiting Time for the
// FioranoMQ JMS Server" (Menth & Henjes, ICDCS 2006) as a Go library.
//
// It bundles three layers behind one import:
//
//   - A JMS-style publish/subscribe broker (topics, correlation-ID filters
//     with wildcard ranges, JMS-selector property filters, persistent
//     non-durable delivery with publisher push-back), embeddable in-process
//     or served over TCP.
//   - The paper's performance model: the message processing time
//     E[B] = t_rcv + n_fltr*t_fltr + E[R]*t_tx (Eq. 1) with the Table I
//     constants, server capacity (Eq. 2), the filter-benefit rule (Eq. 3),
//     and the M/GI/1-∞ waiting-time analysis with its Gamma approximation
//     and quantiles (Eqs. 4–20).
//   - The distributed architectures PSR and SSR (Eqs. 21–23) and the
//     experiment harness regenerating every figure and table of the paper.
//
// The deeper APIs live in the internal packages; this package re-exports
// the surface a downstream user needs.
package jmsperf

import (
	"repro/internal/bench"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/mg1"
	"repro/internal/replication"
	"repro/internal/sim"
)

// Message model.
type (
	// Message is a JMS message: header, typed properties, payload.
	Message = jms.Message
	// DeliveryMode selects persistent or non-persistent delivery.
	DeliveryMode = jms.DeliveryMode
)

// Delivery modes.
const (
	Persistent    = jms.Persistent
	NonPersistent = jms.NonPersistent
)

// NewMessage returns an empty persistent message for a topic.
func NewMessage(topic string) *Message { return jms.NewMessage(topic) }

// Broker layer.
type (
	// Broker is an embeddable JMS-style pub/sub server.
	Broker = broker.Broker
	// BrokerOptions configure a broker.
	BrokerOptions = broker.Options
	// Subscriber is a subscription handle with its delivery queue.
	Subscriber = broker.Subscriber
	// Filter decides whether a message is forwarded to its subscriber.
	Filter = filter.Filter
)

// NewBroker creates a broker.
func NewBroker(opts BrokerOptions) *Broker { return broker.New(opts) }

// DurableOptions configure a durable subscription (the JMS durable mode
// the paper contrasts with its non-durable measurements).
type DurableOptions = broker.DurableOptions

// NewCorrelationIDFilter compiles a correlation-ID filter expression
// (exact match, "[lo;hi]" ranges, '*'/'?' globs).
func NewCorrelationIDFilter(expr string) (Filter, error) {
	return filter.NewCorrelationID(expr)
}

// NewSelectorFilter parses a JMS message selector (SQL92 subset) into a
// property filter.
func NewSelectorFilter(selector string) (Filter, error) {
	return filter.NewProperty(selector)
}

// Performance model (the paper's primary contribution).
type (
	// CostModel holds t_rcv, t_fltr, t_tx (Eq. 1 / Table I).
	CostModel = core.CostModel
	// FilterType selects correlation-ID or application-property filtering.
	FilterType = core.FilterType
)

// Filter types and their Table I constants.
const (
	CorrelationIDFiltering       = core.CorrelationIDFiltering
	ApplicationPropertyFiltering = core.ApplicationPropertyFiltering
)

// Paper constants (Table I).
var (
	TableICorrelationID       = core.TableICorrelationID
	TableIApplicationProperty = core.TableIApplicationProperty
)

// Waiting-time analysis.
type (
	// ServiceMoments are the first three raw moments of the service time.
	ServiceMoments = mg1.ServiceMoments
	// Queue is an M/GI/1-∞ queue.
	Queue = mg1.Queue
	// WaitDist is the Gamma-approximated waiting-time distribution.
	WaitDist = mg1.WaitDist
	// ReplicationDistribution models the message replication grade R.
	ReplicationDistribution = replication.Distribution
)

// NewQueue builds a stable M/GI/1-∞ queue.
func NewQueue(lambda float64, b ServiceMoments) (Queue, error) {
	return mg1.NewQueue(lambda, b)
}

// QueueAtUtilization builds the queue at a target utilization.
func QueueAtUtilization(rho float64, b ServiceMoments) (Queue, error) {
	return mg1.QueueAtUtilization(rho, b)
}

// ServiceMomentsFor evaluates Eqs. 7–9 for B = D + R*t_tx.
func ServiceMomentsFor(model CostModel, nFltr int, r ReplicationDistribution) (ServiceMoments, error) {
	return mg1.MomentsFromReplication(model.ConstantPart(nFltr), model.TTx, r)
}

// Replication-grade models (Eqs. 11–18).
var (
	// NewDeterministicR is the constant replication grade.
	NewDeterministicR = replication.NewDeterministic
	// NewScaledBernoulliR is the all-or-nothing model.
	NewScaledBernoulliR = replication.NewScaledBernoulli
	// NewBinomialR is the independent-filters model.
	NewBinomialR = replication.NewBinomial
)

// Distributed architectures (Section IV-C).
type (
	// DistribScenario describes the symmetric PSR/SSR environment.
	DistribScenario = distrib.Scenario
	// PSRDeployment is a running publisher-side replication system.
	PSRDeployment = distrib.PSRDeployment
	// SSRDeployment is a running subscriber-side replication system.
	SSRDeployment = distrib.SSRDeployment
)

// Capacity formulas and the crossover rule.
var (
	PSRCapacity       = distrib.PSRCapacity
	SSRCapacity       = distrib.SSRCapacity
	PSROutperformsSSR = distrib.PSROutperformsSSR
	CrossoverN        = distrib.CrossoverN
)

// Clustering extension (the paper's §V ongoing work).
type (
	// Bridge forwards one topic between two brokers with loop prevention.
	Bridge = cluster.Bridge
	// Cluster is a full mesh of bridged brokers.
	Cluster = cluster.Cluster
)

// Cluster constructors and the mesh capacity model.
var (
	NewBridge    = cluster.NewBridge
	NewMesh      = cluster.NewMesh
	MeshCapacity = cluster.MeshCapacity
)

// Experiment harness.
type (
	// Series is one plottable data series.
	Series = bench.Series
	// BrokerSimConfig parameterizes the calibrated virtual-time broker.
	BrokerSimConfig = sim.BrokerConfig
)

// Figure and table generators (calibrated mode).
var (
	Fig4     = bench.Fig4
	Fig5     = bench.Fig5
	Fig6     = bench.Fig6
	Eq3Table = bench.Eq3Table
	Fig8     = bench.Fig8
	Fig9     = bench.Fig9
	Fig10    = bench.Fig10
	Fig11    = bench.Fig11
	Fig12    = bench.Fig12
	Fig15    = bench.Fig15
)
