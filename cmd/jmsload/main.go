// Command jmsload drives a remote broker (cmd/jmsd) the way the paper's
// test clients drove FioranoMQ: P saturated publishers and S subscribers,
// each on an exclusive connection, with a warm-up cut and a trimmed
// measurement window, printing the received/dispatched/overall rates.
//
// Usage:
//
//	jmsload -addr 127.0.0.1:7650 -topic bench -publishers 5 \
//	        -matching 2 -nonmatching 40 -warmup 1s -measure 5s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/jms"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jmsload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7650", "broker address")
	topicName := fs.String("topic", "bench", "topic to use (configured if missing)")
	publishers := fs.Int("publishers", 5, "saturated publisher connections")
	matching := fs.Int("matching", 1, "subscribers whose filter matches the traffic (replication grade R)")
	nonMatching := fs.Int("nonmatching", 0, "subscribers with non-matching filters")
	useSelectors := fs.Bool("selectors", false, "use application-property selectors instead of correlation-ID filters")
	warmup := fs.Duration("warmup", time.Second, "warm-up before the measurement window")
	measure := fs.Duration("measure", 5*time.Second, "trimmed measurement window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *publishers < 1 || *matching < 0 || *nonMatching < 0 {
		return fmt.Errorf("jmsload: invalid population (publishers=%d matching=%d nonmatching=%d)",
			*publishers, *matching, *nonMatching)
	}

	admin, err := client.Dial(*addr)
	if err != nil {
		return err
	}
	defer func() { _ = admin.Close() }()
	setupCtx, cancelSetup := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelSetup()
	if err := admin.ConfigureTopic(setupCtx, *topicName); err != nil {
		// Already-configured topics are fine: keep going.
		fmt.Fprintf(stdout, "note: configure topic: %v\n", err)
	}

	spec := func(i int, matches bool) wire.FilterSpec {
		v := 0
		if !matches {
			v = i + 1
		}
		if *useSelectors {
			return wire.FilterSpec{Mode: wire.FilterSelector, Expr: "prop = " + strconv.Itoa(v)}
		}
		return wire.FilterSpec{Mode: wire.FilterCorrelationID, Expr: "#" + strconv.Itoa(v)}
	}

	// Subscribers, each on an exclusive connection (as in the paper).
	var delivered atomic.Uint64
	var subWG sync.WaitGroup
	subConns := make([]*client.Client, 0, *matching+*nonMatching)
	defer func() {
		for _, c := range subConns {
			_ = c.Close()
		}
	}()
	for i := 0; i < *matching+*nonMatching; i++ {
		c, err := client.Dial(*addr)
		if err != nil {
			return err
		}
		subConns = append(subConns, c)
		sub, err := c.Subscribe(setupCtx, *topicName, spec(i, i < *matching), 4096)
		if err != nil {
			return err
		}
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for range sub.Chan() {
				delivered.Add(1)
			}
		}()
	}

	// Publishers: pre-created message, saturated sends.
	template := jms.NewMessage(*topicName)
	if *useSelectors {
		if err := template.SetInt32Property("prop", 0); err != nil {
			return err
		}
	} else {
		if err := template.SetCorrelationID("#0"); err != nil {
			return err
		}
	}
	var published atomic.Uint64
	pubCtx, cancelPub := context.WithCancel(context.Background())
	var pubWG sync.WaitGroup
	for p := 0; p < *publishers; p++ {
		c, err := client.Dial(*addr)
		if err != nil {
			cancelPub()
			return err
		}
		pubWG.Add(1)
		go func(c *client.Client) {
			defer pubWG.Done()
			defer func() { _ = c.Close() }()
			for pubCtx.Err() == nil {
				if err := c.Publish(pubCtx, template.Clone()); err != nil {
					return
				}
				published.Add(1)
			}
		}(c)
	}

	time.Sleep(*warmup)
	pub0, del0 := published.Load(), delivered.Load()
	start := time.Now()
	time.Sleep(*measure)
	pub1, del1 := published.Load(), delivered.Load()
	elapsed := time.Since(start).Seconds()

	cancelPub()
	pubWG.Wait()
	for _, c := range subConns {
		_ = c.Close()
	}
	subConns = nil
	subWG.Wait()

	recvRate := float64(pub1-pub0) / elapsed
	dispRate := float64(del1-del0) / elapsed
	fmt.Fprintf(stdout, "window   : %.2fs (after %v warmup)\n", elapsed, *warmup)
	fmt.Fprintf(stdout, "received : %10.0f msgs/s\n", recvRate)
	fmt.Fprintf(stdout, "dispatched:%10.0f msgs/s (R = %.2f)\n", dispRate, dispRate/recvRate)
	fmt.Fprintf(stdout, "overall  : %10.0f msgs/s\n", recvRate+dispRate)
	return nil
}
