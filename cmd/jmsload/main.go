// Command jmsload drives a remote broker (cmd/jmsd) the way the paper's
// test clients drove FioranoMQ: P publishers and S subscribers, each on an
// exclusive connection, with a warm-up cut and a trimmed measurement
// window, printing the received/dispatched/overall rates.
//
// Two load shapes are supported. The default is the paper's saturated
// mode: every publisher sends as fast as the broker's push-back allows,
// which measures the service capacity. With -rate the generator becomes a
// paced Poisson source at the given aggregate arrival rate — the open
// M/GI/1 arrival model of the analysis — which is the mode to use when
// comparing against the broker's online drift monitor (jmsd -http).
//
// With -tracesample N every Nth published message carries a generator-
// stamped trace ID through the wire protocol; the generator remembers the
// send time per ID and the subscriber side reports the end-to-end
// publish→deliver latency distribution of the sampled messages over the
// measurement window. With -tracehttp pointing at the broker's telemetry
// plane (jmsd -http), the run additionally fetches the sampled IDs from
// /trace/{id} after the load stops and prints the server-side per-stage
// breakdown — ingress→decode→enqueue-wait→match→replicate→transmit→
// encode→egress — next to the end-to-end latency, so the flight
// recorder's decomposition can be read against what the client measured.
//
// With -churn N the generator additionally runs N churner connections,
// each cycling subscribe→unsubscribe with distinct correlation-ID filters
// as fast as the broker confirms them, and reports the sustained
// subscription churn rate. This drives the interned, incrementally-
// maintained subscription store the way the internal/stress wall does,
// but over the real wire protocol against a live jmsd.
//
// With -mesh psr|ssr|hash the target is a replication mesh of jmsd
// members (-addr then lists every member, comma-separated) and the
// generator takes the topology-correct shape: PSR mirrors every
// subscriber on all members and round-robins publishers across entry
// members; SSR partitions subscribers across members (the flood brings
// every message to each home); hash homes all subscribers on the topic's
// owner member. After the load stops the generator drains and reports
// lost deliveries — acked publishes times the matching population minus
// what the subscribers actually saw — which must be zero on a healthy
// mesh.
//
// With -batch B the generator exercises the batched publish path: in
// saturated mode each publisher sends explicit PublishBatch chunks of B
// messages (one MSG_BATCH frame, one broker in-flight slot per chunk); in
// paced mode the Poisson arrivals auto-coalesce through the client's
// size/linger batcher (-linger bounds the wait), producing the M^X/G/1
// batch-arrival pattern the drift monitor models.
//
// Usage:
//
//	jmsload -addr 127.0.0.1:7650 -topic bench -publishers 5 \
//	        -matching 2 -nonmatching 40 -warmup 1s -measure 5s \
//	        -rate 4000 -tracesample 10 -seed 1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/jms"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jmsload", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7650", "broker address; with -mesh, comma-separated addresses of every member")
	meshName := fs.String("mesh", "", "replication topology of the target mesh: psr, ssr or hash; empty drives a standalone broker")
	topicName := fs.String("topic", "bench", "topic to use (configured if missing)")
	publishers := fs.Int("publishers", 5, "publisher connections")
	matching := fs.Int("matching", 1, "subscribers whose filter matches the traffic (replication grade R)")
	nonMatching := fs.Int("nonmatching", 0, "subscribers with non-matching filters")
	useSelectors := fs.Bool("selectors", false, "use application-property selectors instead of correlation-ID filters")
	warmup := fs.Duration("warmup", time.Second, "warm-up before the measurement window")
	measure := fs.Duration("measure", 5*time.Second, "trimmed measurement window")
	rate := fs.Float64("rate", 0, "aggregate Poisson arrival rate in msgs/s (0 = saturated publishers)")
	seed := fs.Int64("seed", 1, "RNG seed for the Poisson arrival schedule")
	traceSample := fs.Int("tracesample", 0, "stamp every Nth published message with a trace ID and report publish-to-deliver latency (0 = off)")
	traceHTTP := fs.String("tracehttp", "", "jmsd telemetry address (host:port); fetch sampled IDs from /trace/{id} after the run and print the server-side stage breakdown (needs -tracesample)")
	batch := fs.Int("batch", 0, "batch size: saturated publishers send explicit PublishBatch chunks of this size, paced publishers auto-coalesce up to it (0 or 1 = per-message)")
	linger := fs.Duration("linger", time.Millisecond, "paced mode: how long the first coalesced message waits for company before a short batch is flushed (needs -batch > 1)")
	churn := fs.Int("churn", 0, "churner connections cycling subscribe/unsubscribe during the run (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *publishers < 1 || *matching < 0 || *nonMatching < 0 {
		return fmt.Errorf("jmsload: invalid population (publishers=%d matching=%d nonmatching=%d)",
			*publishers, *matching, *nonMatching)
	}
	if *rate < 0 {
		return fmt.Errorf("jmsload: negative rate %v", *rate)
	}
	if *batch < 0 {
		return fmt.Errorf("jmsload: negative batch %d", *batch)
	}
	if *linger <= 0 {
		return fmt.Errorf("jmsload: non-positive linger %v", *linger)
	}
	if *traceSample < 0 {
		return fmt.Errorf("jmsload: negative tracesample %d", *traceSample)
	}
	if *churn < 0 {
		return fmt.Errorf("jmsload: negative churn %d", *churn)
	}
	if *traceSample > 0 && *matching == 0 {
		return fmt.Errorf("jmsload: -tracesample needs at least one matching subscriber to observe deliveries")
	}
	if *traceHTTP != "" && *traceSample == 0 {
		return fmt.Errorf("jmsload: -tracehttp needs -tracesample to stamp fetchable IDs")
	}

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("jmsload: no broker address")
	}
	var meshKind cluster.TopologyKind
	if *meshName != "" {
		var err error
		if meshKind, err = cluster.ParseTopology(*meshName); err != nil {
			return fmt.Errorf("jmsload: -mesh: %w", err)
		}
		if len(addrs) < 2 {
			return fmt.Errorf("jmsload: -mesh %s needs at least 2 comma-separated members in -addr", meshKind)
		}
	} else if len(addrs) > 1 {
		return fmt.Errorf("jmsload: multiple -addr members need -mesh")
	}

	// subHomes lists the members subscriber i attaches to. PSR mirrors
	// every subscriber on all members (no forwarding: whichever member a
	// publish enters must match locally); SSR homes each subscriber on one
	// member and lets the flood bring every message there; hash homes all
	// subscribers on the topic's owner, where the mesh routes every publish.
	hashOwner := 0
	if meshKind == cluster.TopologyHash {
		router, err := cluster.NewHashRouter(len(addrs), []string{*topicName})
		if err != nil {
			return err
		}
		hashOwner = router.Owner(*topicName)
	}
	subHomes := func(i int) []string {
		switch meshKind {
		case cluster.TopologyPSR:
			return addrs
		case cluster.TopologySSR:
			return addrs[i%len(addrs) : i%len(addrs)+1]
		case cluster.TopologyHash:
			return addrs[hashOwner : hashOwner+1]
		}
		return addrs[:1]
	}
	pubAddr := func(p int) string { return addrs[p%len(addrs)] }

	setupCtx, cancelSetup := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelSetup()
	for _, a := range addrs {
		admin, err := client.Dial(a)
		if err != nil {
			return err
		}
		if err := admin.ConfigureTopic(setupCtx, *topicName); err != nil {
			// Already-configured topics are fine: keep going.
			fmt.Fprintf(stdout, "note: configure topic on %s: %v\n", a, err)
		}
		_ = admin.Close()
	}

	spec := func(i int, matches bool) wire.FilterSpec {
		v := 0
		if !matches {
			v = i + 1
		}
		if *useSelectors {
			return wire.FilterSpec{Mode: wire.FilterSelector, Expr: "prop = " + strconv.Itoa(v)}
		}
		return wire.FilterSpec{Mode: wire.FilterCorrelationID, Expr: "#" + strconv.Itoa(v)}
	}

	// Subscribers, each on an exclusive connection (as in the paper). The
	// latency summary collects publish→deliver spans of traced messages
	// while `measuring` is set; with several matching subscribers each
	// delivered copy contributes one sample, which is what "latency of a
	// delivery" means under replication.
	var (
		delivered atomic.Uint64
		measuring atomic.Bool
		latMu     sync.Mutex
		lat       = stats.NewSummary()
		// traceSent maps a generator-stamped TraceID to its send time.
		traceMu   sync.Mutex
		traceSent = make(map[uint64]time.Time)
	)
	var subWG sync.WaitGroup
	subConns := make([]*client.Client, 0, *matching+*nonMatching)
	defer func() {
		for _, c := range subConns {
			_ = c.Close()
		}
	}()
	for i := 0; i < *matching+*nonMatching; i++ {
		for _, home := range subHomes(i) {
			c, err := client.Dial(home)
			if err != nil {
				return err
			}
			subConns = append(subConns, c)
			sub, err := c.Subscribe(setupCtx, *topicName, spec(i, i < *matching), 4096)
			if err != nil {
				return err
			}
			subWG.Add(1)
			go func() {
				defer subWG.Done()
				for m := range sub.Chan() {
					delivered.Add(1)
					// Every delivery carries a TraceID (the client library
					// auto-stamps unset ones), so sampled messages are the
					// ones with a remembered send time, not the nonzero ones.
					if t := m.Header.TraceID; t != 0 && measuring.Load() {
						traceMu.Lock()
						sent, ok := traceSent[t]
						traceMu.Unlock()
						if ok {
							d := time.Since(sent).Seconds()
							latMu.Lock()
							lat.Add(d)
							latMu.Unlock()
						}
					}
				}
			}()
		}
	}

	// Publishers: pre-created message template. stamp gives every Nth
	// clone a generator-owned trace ID and remembers its send time, so
	// the subscriber side can compute publish→deliver spans and the
	// post-run -tracehttp pass knows which IDs to ask the broker for.
	template := jms.NewMessage(*topicName)
	if *useSelectors {
		if err := template.SetInt32Property("prop", 0); err != nil {
			return err
		}
	} else {
		if err := template.SetCorrelationID("#0"); err != nil {
			return err
		}
	}
	var published, stamped, acked atomic.Uint64
	traceBase := trace.NewID(uint64(time.Now().UnixNano()), uint64(*seed))
	stamp := func(m *jms.Message) {
		if *traceSample > 0 && published.Add(1)%uint64(*traceSample) == 0 {
			id := trace.NewID(traceBase, stamped.Add(1))
			m.Header.TraceID = id
			traceMu.Lock()
			traceSent[id] = time.Now()
			traceMu.Unlock()
			return
		}
		if *traceSample == 0 {
			published.Add(1)
		}
	}
	pubCtx, cancelPub := context.WithCancel(context.Background())
	defer cancelPub()
	var pubWG sync.WaitGroup

	// Paced publishers coalesce through the client's size/linger batcher;
	// saturated publishers send explicit full batches below, where the
	// coalescer would only add handoff overhead.
	var pubOpts client.Options
	if *rate > 0 && *batch > 1 {
		pubOpts = client.Options{BatchMax: *batch, BatchLinger: *linger}
	}
	pubConns := make([]*client.Client, 0, *publishers)
	for p := 0; p < *publishers; p++ {
		c, err := client.DialWith(pubAddr(p), pubOpts)
		if err != nil {
			return err
		}
		pubConns = append(pubConns, c)
	}

	if *rate > 0 {
		// Paced mode: one pacer goroutine releases arrivals at the absolute
		// deadlines of a Poisson schedule (sleep overshoot displaces one
		// arrival instead of accumulating as drift, and independently
		// displaced Poisson points stay Poisson); the publisher pool drains
		// the due channel so one slow publish does not stall the schedule.
		rng := stats.NewRNG(*seed)
		due := make(chan struct{}, 1024)
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			defer close(due)
			start := time.Now()
			var at float64
			for pubCtx.Err() == nil {
				at += rng.Exp(*rate)
				if d := time.Until(start.Add(time.Duration(at * float64(time.Second)))); d > 0 {
					select {
					case <-time.After(d):
					case <-pubCtx.Done():
						return
					}
				}
				select {
				case due <- struct{}{}:
				case <-pubCtx.Done():
					return
				}
			}
		}()
		// With coalescing on, each connection gets -batch drainers: a
		// batch only fills when that many publishes can park on the
		// connection concurrently, which is the many-threads-per-connection
		// shape the client batcher exists for. One drainer would serialize
		// on its own flush wait and cap the rate at 1/linger per connection.
		drainers := 1
		if pubOpts.BatchMax > 1 {
			drainers = pubOpts.BatchMax
		}
		for _, c := range pubConns {
			var connWG sync.WaitGroup
			for w := 0; w < drainers; w++ {
				pubWG.Add(1)
				connWG.Add(1)
				go func(c *client.Client) {
					defer pubWG.Done()
					defer connWG.Done()
					for range due {
						m := template.Clone()
						stamp(m)
						if err := c.Publish(pubCtx, m); err != nil {
							return
						}
						acked.Add(1)
					}
				}(c)
			}
			go func(c *client.Client) {
				connWG.Wait()
				_ = c.Close()
			}(c)
		}
	} else if *batch > 1 {
		// Saturated batched mode: each publisher sends explicit full
		// batches — one MSG_BATCH frame and one broker in-flight slot per
		// -batch messages. Fresh slice per call: the client encodes before
		// returning, but the broker-side contract is ownership transfer and
		// keeping the load generator's unit allocation visible mirrors it.
		for _, c := range pubConns {
			pubWG.Add(1)
			go func(c *client.Client) {
				defer pubWG.Done()
				defer func() { _ = c.Close() }()
				for pubCtx.Err() == nil {
					msgs := make([]*jms.Message, *batch)
					for i := range msgs {
						msgs[i] = template.Clone()
						stamp(msgs[i])
					}
					if err := c.PublishBatch(pubCtx, msgs); err != nil {
						return
					}
					acked.Add(uint64(len(msgs)))
				}
			}(c)
		}
	} else {
		// Saturated mode: send as fast as push-back allows.
		for _, c := range pubConns {
			pubWG.Add(1)
			go func(c *client.Client) {
				defer pubWG.Done()
				defer func() { _ = c.Close() }()
				for pubCtx.Err() == nil {
					m := template.Clone()
					stamp(m)
					if err := c.Publish(pubCtx, m); err != nil {
						return
					}
					acked.Add(1)
				}
			}(c)
		}
	}

	// Churners: each connection cycles subscribe -> unsubscribe with its
	// own rotating set of exact correlation-ID filters, so the broker's
	// subscription store sees a sustained storm of table mutations (and
	// the interner sees rule churn) while the publish load runs.
	var churnOps atomic.Uint64
	var churnWG sync.WaitGroup
	churnCtx, cancelChurn := context.WithCancel(context.Background())
	defer cancelChurn()
	for g := 0; g < *churn; g++ {
		c, err := client.Dial(addrs[g%len(addrs)])
		if err != nil {
			return err
		}
		churnWG.Add(1)
		go func(g int, c *client.Client) {
			defer churnWG.Done()
			defer func() { _ = c.Close() }()
			for i := 0; churnCtx.Err() == nil; i++ {
				sp := wire.FilterSpec{Mode: wire.FilterCorrelationID,
					Expr: "#churn-" + strconv.Itoa(g) + "-" + strconv.Itoa(i%64)}
				sub, err := c.Subscribe(churnCtx, *topicName, sp, 1)
				if err != nil {
					return
				}
				if err := sub.Unsubscribe(churnCtx); err != nil {
					return
				}
				churnOps.Add(1)
			}
		}(g, c)
	}

	time.Sleep(*warmup)
	measuring.Store(true)
	pub0, del0, ch0 := published.Load(), delivered.Load(), churnOps.Load()
	start := time.Now()
	time.Sleep(*measure)
	pub1, del1, ch1 := published.Load(), delivered.Load(), churnOps.Load()
	measuring.Store(false)
	elapsed := time.Since(start).Seconds()

	cancelChurn()
	churnWG.Wait()
	cancelPub()
	pubWG.Wait()

	// Lost-delivery accounting: every acked publish owes one delivery per
	// matching subscriber, whatever the topology (PSR dispatches on the
	// entry member's mirror, SSR floods to each home, hash routes to the
	// owner). Forwarded copies can still be in flight after the last ack,
	// so drain before comparing.
	expected := acked.Load() * uint64(*matching)
	drainDeadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < expected && time.Now().Before(drainDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	lost := int64(expected) - int64(delivered.Load())

	for _, c := range subConns {
		_ = c.Close()
	}
	subConns = nil
	subWG.Wait()

	recvRate := float64(pub1-pub0) / elapsed
	dispRate := float64(del1-del0) / elapsed
	fmt.Fprintf(stdout, "window   : %.2fs (after %v warmup)\n", elapsed, *warmup)
	if *rate > 0 {
		fmt.Fprintf(stdout, "target   : %10.0f msgs/s (Poisson, seed %d)\n", *rate, *seed)
	}
	fmt.Fprintf(stdout, "received : %10.0f msgs/s\n", recvRate)
	fmt.Fprintf(stdout, "dispatched:%10.0f msgs/s (R = %.2f)\n", dispRate, dispRate/recvRate)
	fmt.Fprintf(stdout, "overall  : %10.0f msgs/s\n", recvRate+dispRate)
	if *meshName != "" {
		fmt.Fprintf(stdout, "mesh     : %s over %d members; lost %d of %d expected deliveries\n",
			meshKind, len(addrs), lost, expected)
	}
	if *churn > 0 {
		fmt.Fprintf(stdout, "churn    : %10.0f sub+unsub ops/s (%d churners)\n",
			float64(ch1-ch0)/elapsed, *churn)
	}
	if *traceSample > 0 {
		latMu.Lock()
		n := lat.N()
		var mean, p99 float64
		if n > 0 {
			mean, _ = lat.Mean()
			p99, _ = lat.Quantile(0.99)
		}
		latMu.Unlock()
		if n == 0 {
			fmt.Fprintf(stdout, "latency  : no traced deliveries in the window\n")
		} else {
			fmt.Fprintf(stdout, "latency  : mean %s  p99 %s  (%d traced deliveries, 1 in %d sampled)\n",
				time.Duration(mean*float64(time.Second)),
				time.Duration(p99*float64(time.Second)), n, *traceSample)
		}
		if *traceHTTP != "" {
			traceMu.Lock()
			ids := make([]uint64, 0, len(traceSent))
			for id := range traceSent {
				ids = append(ids, id)
			}
			traceMu.Unlock()
			printStageBreakdown(stdout, *traceHTTP, ids, mean)
		}
	}
	return nil
}

// printStageBreakdown fetches the broker-side traces for the sampled IDs
// and prints the mean per-message residency of each pipeline stage next
// to the client-measured end-to-end latency. The broker's flight
// recorder head-samples (jmsd -trace-sample N keeps full spans for 1 in
// N IDs) and commits a trace only after it goes quiet, so the fetch
// waits briefly, tolerates 404s, and reports how many IDs resolved.
func printStageBreakdown(stdout io.Writer, addr string, ids []uint64, e2eMean float64) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	// Let the recorder's quiescence sweep (250ms by default) commit the
	// tail of the run before asking for span trees.
	time.Sleep(600 * time.Millisecond)
	cl := &http.Client{Timeout: 2 * time.Second}
	const maxFetch = 256
	type agg struct {
		sumNs int64
		n     int64
	}
	byStage := make(map[string]*agg)
	var fetched, sojournNs int64
	for i := len(ids) - 1; i >= 0 && fetched < maxFetch; i-- {
		resp, err := cl.Get(base + "/trace/" + trace.FormatID(ids[i]))
		if err != nil {
			fmt.Fprintf(stdout, "stages   : fetch failed: %v\n", err)
			return
		}
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			continue
		}
		var tj trace.TraceJSON
		err = json.NewDecoder(resp.Body).Decode(&tj)
		_ = resp.Body.Close()
		if err != nil || tj.Skeleton || tj.SpanCount == 0 {
			continue
		}
		fetched++
		sojournNs += tj.TotalNs
		for _, sp := range tj.Spans {
			a := byStage[sp.Stage]
			if a == nil {
				a = &agg{}
				byStage[sp.Stage] = a
			}
			a.sumNs += sp.DurNs
			a.n++
		}
	}
	if fetched == 0 {
		fmt.Fprintf(stdout, "stages   : no sampled IDs resolved at %s/trace (is jmsd running with -trace-sample?)\n", base)
		return
	}
	fmt.Fprintf(stdout, "stages   : %d of %d sampled IDs resolved at %s/trace\n", fetched, len(ids), base)
	for _, st := range trace.Stages() {
		a := byStage[st.String()]
		if a == nil || a.n == 0 {
			continue
		}
		perMsg := time.Duration(a.sumNs / fetched)
		note := st.Layer()
		if st == trace.StageIngress {
			note += ", includes socket idle wait"
		}
		fmt.Fprintf(stdout, "  %-12s %12v/msg  (%d spans, %s)\n", st.String(), perMsg, a.n, note)
	}
	fmt.Fprintf(stdout, "  %-12s %12v/msg  (broker enqueue→last transmit)\n",
		"sojourn", time.Duration(sojournNs/fetched))
	fmt.Fprintf(stdout, "  %-12s %12v/msg  (client publish→deliver)\n",
		"end-to-end", time.Duration(e2eMean*float64(time.Second)))
}
