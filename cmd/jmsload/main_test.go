package main

import (
	"bytes"
	"net"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/wire"
)

func startBroker(t *testing.T) string {
	t.Helper()
	b := broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(b, ln)
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	return ln.Addr().String()
}

func TestLoadAgainstLocalBroker(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	addr := startBroker(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr, "-publishers", "2", "-matching", "2", "-nonmatching", "5",
		"-warmup", "50ms", "-measure", "250ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"received", "dispatched", "overall"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q: %s", want, s)
		}
	}
	// R should be ~2 (two matching subscribers).
	if !strings.Contains(s, "R = 2.0") && !strings.Contains(s, "R = 1.9") && !strings.Contains(s, "R = 2.1") {
		t.Errorf("replication grade not ~2 in output: %s", s)
	}
}

func TestLoadSelectors(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	addr := startBroker(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr, "-selectors", "-publishers", "1", "-matching", "1",
		"-warmup", "30ms", "-measure", "120ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "received") {
		t.Errorf("output: %s", out.String())
	}
}

// TestLoadPacedWithTracing runs the Poisson-paced mode with trace
// sampling and checks the achieved rate tracks the target and the
// latency summary is reported.
func TestLoadPacedWithTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	addr := startBroker(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr, "-publishers", "2", "-matching", "1",
		"-rate", "2000", "-seed", "7", "-tracesample", "5",
		"-warmup", "100ms", "-measure", "500ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"target", "Poisson, seed 7", "received", "latency", "p99"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q: %s", want, s)
		}
	}
	// The achieved rate should be in the neighborhood of the 2000 msgs/s
	// target; wide bounds, this is a smoke test on shared CI hardware.
	m := regexp.MustCompile(`received : +(\d+) msgs/s`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no received rate in output: %s", s)
	}
	rate, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 500 || rate > 4000 {
		t.Errorf("achieved rate %.0f msgs/s not in the neighborhood of the 2000 target: %s", rate, s)
	}
}

// startMesh boots n brokers joined as a wire mesh of the given kind and
// returns the comma-joined member address list.
func startMesh(t *testing.T, n int, kind cluster.TopologyKind) string {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for i := range lns {
		b := broker.New(broker.Options{})
		wm, err := cluster.NewWireMesh(cluster.WireMeshConfig{
			Kind:  kind,
			Self:  i,
			Addrs: addrs,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.ServeWith(b, lns[i], wire.ServeOptions{Forwarder: wm})
		t.Cleanup(func() {
			_ = wm.Close()
			_ = srv.Close()
			_ = b.Close()
		})
	}
	return strings.Join(addrs, ",")
}

// TestLoadMesh drives each topology over a live 3-member mesh and checks
// the drain accounting closes: zero lost deliveries.
func TestLoadMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	for _, kind := range []cluster.TopologyKind{
		cluster.TopologyPSR, cluster.TopologySSR, cluster.TopologyHash,
	} {
		t.Run(kind.String(), func(t *testing.T) {
			addrList := startMesh(t, 3, kind)
			var out bytes.Buffer
			err := run([]string{
				"-addr", addrList, "-mesh", kind.String(),
				"-publishers", "3", "-matching", "2", "-nonmatching", "4",
				"-rate", "500", "-warmup", "50ms", "-measure", "300ms",
			}, &out)
			if err != nil {
				t.Fatal(err)
			}
			s := out.String()
			if !strings.Contains(s, "mesh     : "+kind.String()+" over 3 members") {
				t.Errorf("output missing mesh line: %s", s)
			}
			if !strings.Contains(s, "lost 0 of") {
				t.Errorf("deliveries lost: %s", s)
			}
			// R should be ~2 (two matching subscribers) whatever the topology.
			m := regexp.MustCompile(`R = ([0-9.]+)`).FindStringSubmatch(s)
			if m == nil {
				t.Fatalf("no replication grade in output: %s", s)
			}
			if r, _ := strconv.ParseFloat(m[1], 64); r < 1.8 || r > 2.2 {
				t.Errorf("replication grade %s not ~2: %s", m[1], s)
			}
		})
	}
}

func TestLoadErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-publishers", "0"}, &out); err == nil {
		t.Error("publishers=0 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:1"}, &out); err == nil {
		t.Error("unreachable broker accepted")
	}
	if err := run([]string{"-rate", "-1"}, &out); err == nil {
		t.Error("negative rate accepted")
	}
	if err := run([]string{"-tracesample", "-2"}, &out); err == nil {
		t.Error("negative tracesample accepted")
	}
	if err := run([]string{"-tracesample", "3", "-matching", "0"}, &out); err == nil {
		t.Error("tracesample without matching subscriber accepted")
	}
	if err := run([]string{"-mesh", "bogus", "-addr", "a:1,b:1"}, &out); err == nil {
		t.Error("bogus mesh kind accepted")
	}
	if err := run([]string{"-mesh", "ssr", "-addr", "a:1"}, &out); err == nil {
		t.Error("single-member mesh accepted")
	}
	if err := run([]string{"-addr", "a:1,b:1"}, &out); err == nil {
		t.Error("multiple addresses without -mesh accepted")
	}
}
