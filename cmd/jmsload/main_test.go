package main

import (
	"bytes"
	"net"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/broker"
	"repro/internal/wire"
)

func startBroker(t *testing.T) string {
	t.Helper()
	b := broker.New(broker.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.Serve(b, ln)
	t.Cleanup(func() {
		_ = srv.Close()
		_ = b.Close()
	})
	return ln.Addr().String()
}

func TestLoadAgainstLocalBroker(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	addr := startBroker(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr, "-publishers", "2", "-matching", "2", "-nonmatching", "5",
		"-warmup", "50ms", "-measure", "250ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"received", "dispatched", "overall"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q: %s", want, s)
		}
	}
	// R should be ~2 (two matching subscribers).
	if !strings.Contains(s, "R = 2.0") && !strings.Contains(s, "R = 1.9") && !strings.Contains(s, "R = 2.1") {
		t.Errorf("replication grade not ~2 in output: %s", s)
	}
}

func TestLoadSelectors(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	addr := startBroker(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr, "-selectors", "-publishers", "1", "-matching", "1",
		"-warmup", "30ms", "-measure", "120ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "received") {
		t.Errorf("output: %s", out.String())
	}
}

// TestLoadPacedWithTracing runs the Poisson-paced mode with trace
// sampling and checks the achieved rate tracks the target and the
// latency summary is reported.
func TestLoadPacedWithTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bound")
	}
	addr := startBroker(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr, "-publishers", "2", "-matching", "1",
		"-rate", "2000", "-seed", "7", "-tracesample", "5",
		"-warmup", "100ms", "-measure", "500ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"target", "Poisson, seed 7", "received", "latency", "p99"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q: %s", want, s)
		}
	}
	// The achieved rate should be in the neighborhood of the 2000 msgs/s
	// target; wide bounds, this is a smoke test on shared CI hardware.
	m := regexp.MustCompile(`received : +(\d+) msgs/s`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("no received rate in output: %s", s)
	}
	rate, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 500 || rate > 4000 {
		t.Errorf("achieved rate %.0f msgs/s not in the neighborhood of the 2000 target: %s", rate, s)
	}
}

func TestLoadErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-publishers", "0"}, &out); err == nil {
		t.Error("publishers=0 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run([]string{"-addr", "127.0.0.1:1"}, &out); err == nil {
		t.Error("unreachable broker accepted")
	}
	if err := run([]string{"-rate", "-1"}, &out); err == nil {
		t.Error("negative rate accepted")
	}
	if err := run([]string{"-tracesample", "-2"}, &out); err == nil {
		t.Error("negative tracesample accepted")
	}
	if err := run([]string{"-tracesample", "3", "-matching", "0"}, &out); err == nil {
		t.Error("tracesample without matching subscriber accepted")
	}
}
