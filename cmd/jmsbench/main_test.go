package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	var out bytes.Buffer
	err := run([]string{
		"-grid", "small", "-publishers", "2",
		"-warmup", "20ms", "-measure", "80ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"native study", "measured points", "Table I", "fit diagnostics", "Fig4(native)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	var out bytes.Buffer
	err := run([]string{"-identical", "-publishers", "2", "-warmup", "20ms", "-measure", "80ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ratio:") {
		t.Errorf("identical experiment output missing ratio: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-type", "bogus"}, &out); err == nil {
		t.Error("bogus type accepted")
	}
	if err := run([]string{"-grid", "bogus"}, &out); err == nil {
		t.Error("bogus grid accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	var out bytes.Buffer
	err := run([]string{
		"-compare", "-publishers", "2",
		"-warmup", "10ms", "-measure", "40ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"engine comparison", "faithful msg/s", "fast msg/s", "speedup", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison output missing %q", want)
		}
	}
}

func TestRunEngineErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "bogus"}, &out); err == nil {
		t.Error("bogus engine accepted")
	}
}
