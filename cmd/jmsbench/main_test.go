package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	var out bytes.Buffer
	err := run([]string{
		"-grid", "small", "-publishers", "2",
		"-warmup", "20ms", "-measure", "80ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"native study", "measured points", "Table I", "fit diagnostics", "Fig4(native)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	var out bytes.Buffer
	err := run([]string{"-identical", "-publishers", "2", "-warmup", "20ms", "-measure", "80ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ratio:") {
		t.Errorf("identical experiment output missing ratio: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-type", "bogus"}, &out); err == nil {
		t.Error("bogus type accepted")
	}
	if err := run([]string{"-grid", "bogus"}, &out); err == nil {
		t.Error("bogus grid accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	var out bytes.Buffer
	err := run([]string{
		"-compare", "-publishers", "2",
		"-warmup", "10ms", "-measure", "40ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"engine comparison", "faithful msg/s", "fast msg/s", "speedup", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("comparison output missing %q", want)
		}
	}
}

// TestRunEngineErrors checks the fail-fast path: a typoed -engine is
// rejected before any measurement starts, and the error tells the user
// what the valid spellings are.
func TestRunEngineErrors(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-engine", "bogus"}, &out)
	if err == nil {
		t.Fatal("bogus engine accepted")
	}
	for _, want := range []string{"bogus", "valid engines", "faithful", "fast"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("engine error %q missing %q", err, want)
		}
	}
}

// TestRunStages checks that -stages prints the per-stage Eq. 1
// measurements next to the throughput fit.
func TestRunStages(t *testing.T) {
	if testing.Short() {
		t.Skip("native measurement is wall-clock bound")
	}
	var out bytes.Buffer
	err := run([]string{
		"-stages", "-grid", "small", "-publishers", "2",
		"-warmup", "20ms", "-measure", "80ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Per-stage timing", "t_rcv_us", "t_fltr_us", "t_tx_us", "staged_EB_us",
		"three derivations", "stage means (direct)", "fit of staged E[B]", "fit of 1/throughput",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-stages output missing %q", want)
		}
	}
}
