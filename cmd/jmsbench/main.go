// Command jmsbench runs the native measurement study against this
// repository's real broker, following the paper's methodology (saturated
// publishers, warm-up trim, repeated sweep over filter counts and
// replication grades), and fits the machine-local Table I constants.
//
// Usage:
//
//	jmsbench -type corrid -grid small -measure 200ms
//	jmsbench -type appprop -grid paper -publishers 5
//	jmsbench -identical          # the §III-B identical-filters experiment
//	jmsbench -engine fast        # measure the optimized dispatch engine
//	jmsbench -compare            # faithful-vs-fast throughput table
//	jmsbench -chaos              # model vs simulation vs broker-under-faults
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/broker"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/replication"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jmsbench", flag.ContinueOnError)
	ftName := fs.String("type", "corrid", "filter type: corrid or appprop")
	publishers := fs.Int("publishers", 5, "saturated publisher goroutines (paper: 5)")
	warmup := fs.Duration("warmup", 100*time.Millisecond, "warm-up trim before measuring")
	measure := fs.Duration("measure", 500*time.Millisecond, "trimmed observation window")
	gridName := fs.String("grid", "small", "sweep grid: small or paper")
	identical := fs.Bool("identical", false, "run the identical-vs-different non-matching filters experiment")
	engineName := fs.String("engine", "faithful", "dispatch engine: "+strings.Join(broker.EngineNames(), " or "))
	shards := fs.Int("shards", 0, "fast engine: filter-matching workers per topic (0 = auto)")
	compare := fs.Bool("compare", false, "run the sweep on both engines and print a faithful-vs-fast comparison table plus a batched-vs-unbatched publish row")
	batch := fs.Int("batch", 0, "coalesce publishes into batches of this size (0 or 1 = per-message); -compare uses it for its batched row (default 16)")
	stages := fs.Bool("stages", false, "record per-stage pipeline timings and print measured t_rcv/t_fltr/t_tx next to the throughput fit")
	chaos := fs.Bool("chaos", false, "run the conformance suite: closed forms vs simulator, then the live broker over a fault-injecting transport")
	gcPercent := fs.Int("gcpercent", -1, "GOGC target for the measurement process; -1 disables periodic GC behind a 2 GiB memory-limit backstop, 100 restores the Go default. The paper's FioranoMQ runs measured a fixed-heap JVM; pinning collector policy keeps the sweep measuring the dispatch path, not allocation policy.")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Respect an explicit GOGC from the environment; otherwise apply the
	// harness default so runs are comparable across shells.
	if os.Getenv("GOGC") == "" {
		if *gcPercent < 0 {
			debug.SetMemoryLimit(2 << 30)
		}
		debug.SetGCPercent(*gcPercent)
	}
	if *chaos {
		return runChaos(stdout)
	}
	engine, err := broker.ParseEngine(*engineName)
	if err != nil {
		return fmt.Errorf("-engine: %w", err)
	}

	var ft core.FilterType
	switch *ftName {
	case "corrid":
		ft = core.CorrelationIDFiltering
	case "appprop":
		ft = core.ApplicationPropertyFiltering
	default:
		return fmt.Errorf("unknown -type %q", *ftName)
	}

	cfg := bench.NativeConfig{
		FilterType:  ft,
		Publishers:  *publishers,
		Warmup:      *warmup,
		Measure:     *measure,
		Engine:      engine,
		Shards:      *shards,
		Batch:       *batch,
		StageTiming: *stages,
	}

	if *identical {
		return runIdentical(cfg, stdout)
	}

	var grid bench.StudyGrid
	switch *gridName {
	case "paper":
		grid = bench.PaperGrid()
	case "small":
		grid = bench.StudyGrid{NValues: []int{0, 20, 80, 160}, RValues: []int{1, 5, 20}}
	default:
		return fmt.Errorf("unknown -grid %q (want small or paper)", *gridName)
	}

	if *compare {
		batchSize := *batch
		if batchSize < 2 {
			batchSize = 16
		}
		return runCompare(cfg, grid, batchSize, stdout)
	}

	fmt.Fprintf(stdout, "native study: %v, %s engine, %d publishers, %v warmup, %v window\n",
		ft, cfg.Engine, cfg.Publishers, cfg.Warmup, cfg.Measure)
	res, err := bench.RunNativeStudy(cfg, grid)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\nmeasured points (n_fltr, R, received/s, dispatched/s, overall/s, E[B] us):\n")
	for _, p := range res.Points {
		fmt.Fprintf(stdout, "  %5d  %3d  %10.0f  %10.0f  %10.0f  %8.2f\n",
			p.NFltr, p.R, p.ReceivedRate, p.DispatchedRate, p.OverallRate, p.MeanServiceTime*1e6)
	}

	t1, err := bench.Table1Series(res, ft)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\n%s", t1.String())
	fmt.Fprintf(stdout, "\nfit diagnostics: R2=%.6f RMSE=%.3gs maxResidual=%.3gs\n",
		res.Fit.R2, res.Fit.RMSE, res.Fit.MaxAbsResidual)

	if *stages {
		if err := printStages(res, stdout); err != nil {
			return err
		}
	}

	f4, err := bench.Fig4Native(res)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout)
	return bench.WriteAll(stdout, f4)
}

// printStages reports the per-stage Eq. 1 measurements: the per-scenario
// components, their mean, and the fit over the stage-composed service
// times, next to the throughput fit they should reproduce.
func printStages(res bench.StudyResult, stdout io.Writer) error {
	ss, err := bench.StageSeries(res)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\n%s", ss.String())

	summary, err := bench.StageSummary(res)
	if err != nil {
		return err
	}
	sfit, err := bench.StageFit(res)
	if err != nil {
		return err
	}
	tput := res.Fit.Model
	fmt.Fprintf(stdout, "\nEq. 1 constants, three derivations (us):\n")
	fmt.Fprintf(stdout, "  %-28s  %10s  %10s  %10s\n", "", "t_rcv", "t_fltr", "t_tx")
	fmt.Fprintf(stdout, "  %-28s  %10.3f  %10.3f  %10.3f\n", "stage means (direct)",
		summary.TRcv*1e6, summary.TFltr*1e6, summary.TTx*1e6)
	fmt.Fprintf(stdout, "  %-28s  %10.3f  %10.3f  %10.3f\n", "fit of staged E[B] (Eq. 1)",
		sfit.Model.TRcv*1e6, sfit.Model.TFltr*1e6, sfit.Model.TTx*1e6)
	fmt.Fprintf(stdout, "  %-28s  %10.3f  %10.3f  %10.3f\n", "fit of 1/throughput (Table I)",
		tput.TRcv*1e6, tput.TFltr*1e6, tput.TTx*1e6)
	if tput.TFltr > 0 && tput.TTx > 0 {
		fmt.Fprintf(stdout, "  staged-fit / throughput-fit:  %10.3f  %10.3f  %10.3f\n",
			ratio(sfit.Model.TRcv, tput.TRcv), ratio(sfit.Model.TFltr, tput.TFltr), ratio(sfit.Model.TTx, tput.TTx))
	}
	return nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// runCompare measures every grid scenario on both engines and prints the
// throughput side by side — what the paper's linear filter scan leaves on
// the table against an indexed, sharded, copy-on-write dispatch path.
func runCompare(cfg bench.NativeConfig, grid bench.StudyGrid, batchSize int, stdout io.Writer) error {
	cfg.Batch = 0
	fmt.Fprintf(stdout, "engine comparison: %v, %d publishers, %v warmup, %v window\n\n",
		cfg.FilterType, cfg.Publishers, cfg.Warmup, cfg.Measure)
	fmt.Fprintf(stdout, "  n_fltr    R   faithful msg/s       fast msg/s   speedup\n")
	for _, n := range grid.NValues {
		for _, r := range grid.RValues {
			faithfulCfg := cfg
			faithfulCfg.Engine = broker.EngineFaithful
			faithful, err := bench.MeasureScenario(faithfulCfg, n, r)
			if err != nil {
				return fmt.Errorf("faithful n=%d r=%d: %w", n, r, err)
			}
			fastCfg := cfg
			fastCfg.Engine = broker.EngineFast
			fast, err := bench.MeasureScenario(fastCfg, n, r)
			if err != nil {
				return fmt.Errorf("fast n=%d r=%d: %w", n, r, err)
			}
			fmt.Fprintf(stdout, "  %6d  %3d  %15.0f  %15.0f  %7.2fx\n",
				faithful.NFltr, r, faithful.ReceivedRate, fast.ReceivedRate,
				fast.ReceivedRate/faithful.ReceivedRate)
		}
	}
	return runCompareBatched(cfg, batchSize, stdout)
}

// runCompareBatched is the batching row of the comparison: the fast
// engine's publish-path throughput per message vs coalesced batches on
// the minimal filter population (n=0, R=1), isolating the per-arrival-
// unit overhead (in-flight slot, channel handoff, dispatch-stage entry)
// that batching amortizes.
func runCompareBatched(cfg bench.NativeConfig, batchSize int, stdout io.Writer) error {
	cfg.Engine = broker.EngineFast
	cfg.Batch = 0
	unbatched, err := bench.MeasureScenario(cfg, 0, 1)
	if err != nil {
		return fmt.Errorf("unbatched: %w", err)
	}
	cfg.Batch = batchSize
	batched, err := bench.MeasureScenario(cfg, 0, 1)
	if err != nil {
		return fmt.Errorf("batch %d: %w", batchSize, err)
	}
	fmt.Fprintf(stdout, "\nbatched publish path (fast engine, n_fltr=1, R=1):\n")
	fmt.Fprintf(stdout, "  per-message publishes   %12.0f msg/s\n", unbatched.ReceivedRate)
	fmt.Fprintf(stdout, "  batches of %-4d         %12.0f msg/s\n", batchSize, batched.ReceivedRate)
	fmt.Fprintf(stdout, "  speedup: %.2fx\n", batched.ReceivedRate/unbatched.ReceivedRate)
	return nil
}

// runChaos runs the conformance suite interactively: first the two
// model legs (closed forms vs Lindley simulator) for the paper's three
// replication families, then the live broker behind a fault-injecting
// transport, compared against the M/G/1 prediction at the achieved
// arrival rate.
func runChaos(stdout io.Writer) error {
	det, err := replication.NewDeterministic(5)
	if err != nil {
		return err
	}
	sb, err := replication.NewScaledBernoulli(20, 0.25)
	if err != nil {
		return err
	}
	bin, err := replication.NewBinomial(20, 0.25)
	if err != nil {
		return err
	}
	families := []struct {
		name string
		r    replication.Distribution
	}{
		{"deterministic(5)", det},
		{"scaledBernoulli(20,0.25)", sb},
		{"binomial(20,0.25)", bin},
	}

	fmt.Fprintf(stdout, "conformance leg 1: closed forms vs Lindley simulator (D=1, t_tx=0.2, rho=0.7)\n")
	fmt.Fprintf(stdout, "  %-26s  %12s  %12s  %12s  %12s\n",
		"replication", "E[W] model", "E[W] sim", "q99 model", "q99 sim")
	for _, fam := range families {
		cfg := conformance.Config{D: 1.0, TTx: 0.2, R: fam.r, Rho: 0.7, Seed: 7}
		a, err := conformance.Analytic(cfg)
		if err != nil {
			return err
		}
		s, err := conformance.Simulated(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %-26s  %12.4f  %12.4f  %12.4f  %12.4f\n",
			fam.name, a.MeanWait, s.MeanWait, a.Quantile, s.Quantile)
	}

	fmt.Fprintf(stdout, "\nconformance leg 2: live broker over a fault-injecting transport\n")
	res, err := conformance.RunBroker(conformance.BrokerConfig{
		Rho:      0.6,
		Messages: 4000,
		Seed:     11,
		Faults:   faultnet.Config{ResetAfterBytes: 96 << 10},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "  calibrated E[B] = %.2fus, achieved lambda = %.0f/s, rho = %.3f\n",
		res.MeanService*1e6, res.Lambda, res.Rho)
	fmt.Fprintf(stdout, "  zero-load floor: mean = %.2fus (subtracted from the observation)\n",
		res.Baseline.MeanWait*1e6)
	fmt.Fprintf(stdout, "  %-10s  %12s  %12s\n", "", "E[W] (us)", "q99 (us)")
	fmt.Fprintf(stdout, "  %-10s  %12.2f  %12.2f\n", "observed", res.Observed.MeanWait*1e6, res.Observed.Quantile*1e6)
	fmt.Fprintf(stdout, "  %-10s  %12.2f  %12.2f\n", "predicted", res.Predicted.MeanWait*1e6, res.Predicted.Quantile*1e6)
	fmt.Fprintf(stdout, "  transport resets=%d client reconnects=%d publish retries=%d duplicates suppressed=%d\n",
		res.Resets, res.Reconnects, res.PublishRetries, res.Duplicates)
	return nil
}

func runIdentical(cfg bench.NativeConfig, stdout io.Writer) error {
	const n = 120
	diffRes, err := bench.MeasureScenario(cfg, n, 1)
	if err != nil {
		return err
	}
	cfg.NonMatchingIdentical = true
	sameRes, err := bench.MeasureScenario(cfg, n, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "identical-vs-different non-matching filters (n=%d, R=1):\n", n)
	fmt.Fprintf(stdout, "  different filters: %10.0f msgs/s received\n", diffRes.ReceivedRate)
	fmt.Fprintf(stdout, "  identical filters: %10.0f msgs/s received\n", sameRes.ReceivedRate)
	fmt.Fprintf(stdout, "  ratio: %.3f (a linear filter scan gains nothing from identical filters)\n",
		sameRes.ReceivedRate/diffRes.ReceivedRate)
	return nil
}
