// Command benchjson turns `go test -bench` output into a dated JSON
// point on the benchmark trajectory and gates regressions against the
// previous point.
//
//	go test -run xxx -bench BenchmarkRegression -benchmem . > bench/latest.txt
//	go run ./cmd/benchjson -in bench/latest.txt -dir bench
//
// It parses the ns/op, B/op and allocs/op columns, writes
// bench/BENCH_<date>.json, and compares against the most recent earlier
// BENCH_*.json in the same directory: allocs/op is machine-independent
// and always checked; ns/op is only checked when the recorded host
// fingerprint (cpu model + GOMAXPROCS) matches, so a committed trajectory
// point from one machine does not fail CI on another. Any tracked metric
// regressing more than -threshold (default 20%) exits non-zero.
//
// -maxallocs pins absolute ceilings on top of the relative gate:
// "name=ceiling,..." pairs (benchmark names without the Benchmark prefix)
// that fail the run whenever allocs/op exceeds the ceiling, regardless of
// what the previous point recorded. The zero-allocation wire-path rows are
// held at their designed budgets this way, so an alloc regression cannot
// ratchet in across two >20%-tolerant steps.
//
// Custom b.ReportMetric columns (msgs/s/core, bytes/sub, ...) are parsed
// into each result's metrics map and recorded in the trajectory point.
// -maxmetric pins absolute ceilings on them: "name:unit=ceiling,..."
// entries fail the run whenever the named metric exceeds the ceiling —
// the memory-ceiling gate for the subscription-store row.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's recorded metrics. Metrics holds any custom
// b.ReportMetric columns keyed by unit.
type Result struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op"`
	AllocsOp float64            `json:"allocs_op"`
	Metrics  map[string]float64 `json:"metrics,omitempty"`
}

// Record is one trajectory point: who measured and what.
type Record struct {
	Date    string            `json:"date"`
	Go      string            `json:"go"`
	GOOS    string            `json:"goos"`
	GOARCH  string            `json:"goarch"`
	CPU     string            `json:"cpu,omitempty"`
	MaxProc int               `json:"maxprocs"`
	Results map[string]Result `json:"results"`
}

// fingerprint identifies the machine well enough to decide whether ns/op
// comparisons are meaningful.
func (r Record) fingerprint() string {
	return fmt.Sprintf("%s/%s/%s/%d", r.GOOS, r.GOARCH, r.CPU, r.MaxProc)
}

// benchLine matches the name and iteration-count prefix of one
// `go test -bench` result row, e.g.
//
//	BenchmarkRegressionPublish-8   183571   619.2 ns/op   193 B/op   1 allocs/op
//
// The -N GOMAXPROCS suffix is optional and stripped, so trajectories
// survive core-count changes in the name (the fingerprint still gates the
// time comparison). The measurement columns after the prefix are parsed
// pairwise as value/unit, so custom b.ReportMetric columns interleaved
// between ns/op and the -benchmem pair are kept rather than dropped.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\S.*)$`)

// parseResult parses the value/unit column pairs of one result row. The
// well-known testing units land in the fixed fields; anything else goes
// to the Metrics map. A row without an ns/op column is not a result row.
func parseResult(columns string) (Result, bool) {
	var r Result
	sawNs := false
	fields := strings.Fields(columns)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return r, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsOp, sawNs = v, true
		case "B/op":
			r.BOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, sawNs
}

func parseBench(path string) (map[string]Result, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	results := make(map[string]Result)
	var cpu string
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r, ok := parseResult(m[2])
		if !ok {
			continue
		}
		results[strings.TrimPrefix(m[1], "Benchmark")] = r
	}
	return results, cpu, nil
}

// previous returns the newest BENCH_*.json in dir other than self.
// BENCH_<RFC3339-date> names sort chronologically as strings.
func previous(dir, self string) (string, error) {
	entries, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	sort.Strings(entries)
	prev := ""
	for _, e := range entries {
		if filepath.Base(e) != filepath.Base(self) {
			prev = e
		}
	}
	return prev, nil
}

func load(path string) (Record, error) {
	var r Record
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	return r, json.Unmarshal(data, &r)
}

// compare reports every >threshold regression of cur vs prev. ns/op is
// compared only when hosts match; allocs/op always, with a +0.5 absolute
// floor so a one-alloc jitter on a two-alloc benchmark does not fail.
func compare(prev, cur Record, threshold float64) []string {
	var regressions []string
	sameHost := prev.fingerprint() == cur.fingerprint()
	names := make([]string, 0, len(cur.Results))
	for name := range cur.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cur.Results[name]
		p, ok := prev.Results[name]
		if !ok {
			fmt.Printf("  %-28s new benchmark, no baseline\n", name)
			continue
		}
		if c.AllocsOp > p.AllocsOp*(1+threshold)+0.5 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %g -> %g (>%g%%)", name, p.AllocsOp, c.AllocsOp, 100*threshold))
		}
		if sameHost && p.NsOp > 0 && c.NsOp > p.NsOp*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %g -> %g (>%g%%)", name, p.NsOp, c.NsOp, 100*threshold))
		}
		note := ""
		if !sameHost {
			note = " (ns/op not compared: different host)"
		}
		fmt.Printf("  %-28s ns/op %10.1f -> %10.1f   allocs/op %5g -> %-5g%s\n",
			name, p.NsOp, c.NsOp, p.AllocsOp, c.AllocsOp, note)
	}
	return regressions
}

// parseMaxAllocs parses a "name=ceiling,name=ceiling" spec into absolute
// allocs/op ceilings keyed by benchmark name (without Benchmark prefix).
func parseMaxAllocs(spec string) (map[string]float64, error) {
	ceilings := make(map[string]float64)
	if spec == "" {
		return ceilings, nil
	}
	for _, pair := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return nil, fmt.Errorf("bad -maxallocs entry %q: want name=ceiling", pair)
		}
		ceiling, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -maxallocs ceiling in %q: %w", pair, err)
		}
		ceilings[strings.TrimPrefix(name, "Benchmark")] = ceiling
	}
	return ceilings, nil
}

// metricCeiling is one -maxmetric entry: an absolute upper bound on a
// named custom metric of a named benchmark.
type metricCeiling struct {
	bench, unit string
	ceiling     float64
}

// parseMaxMetric parses a "name:unit=ceiling,..." spec (benchmark names
// without the Benchmark prefix) into absolute metric ceilings.
func parseMaxMetric(spec string) ([]metricCeiling, error) {
	var ceilings []metricCeiling
	if spec == "" {
		return ceilings, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad -maxmetric entry %q: want name:unit=ceiling", entry)
		}
		bench, unit, ok := strings.Cut(key, ":")
		if !ok {
			return nil, fmt.Errorf("bad -maxmetric entry %q: want name:unit=ceiling", entry)
		}
		ceiling, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -maxmetric ceiling in %q: %w", entry, err)
		}
		ceilings = append(ceilings, metricCeiling{
			bench:   strings.TrimPrefix(bench, "Benchmark"),
			unit:    unit,
			ceiling: ceiling,
		})
	}
	return ceilings, nil
}

// checkMetricCeilings reports every -maxmetric violation, and flags
// entries naming benchmarks or metrics absent from the run (a renamed
// benchmark or dropped ReportMetric must not silently unpin its budget).
func checkMetricCeilings(results map[string]Result, ceilings []metricCeiling) []string {
	var violations []string
	for _, c := range ceilings {
		r, ok := results[c.bench]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: -maxmetric ceiling set but benchmark not in run", c.bench))
			continue
		}
		v, ok := r.Metrics[c.unit]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: -maxmetric ceiling set but metric %s not reported", c.bench, c.unit))
			continue
		}
		if v > c.ceiling {
			violations = append(violations, fmt.Sprintf(
				"%s: %s %g exceeds ceiling %g", c.bench, c.unit, v, c.ceiling))
		}
	}
	return violations
}

// checkCeilings reports every benchmark whose allocs/op exceeds its -maxallocs
// ceiling, and flags ceilings naming benchmarks absent from the run (a
// renamed benchmark must not silently unpin its budget).
func checkCeilings(results map[string]Result, ceilings map[string]float64) []string {
	var violations []string
	names := make([]string, 0, len(ceilings))
	for name := range ceilings {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r, ok := results[name]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: -maxallocs ceiling set but benchmark not in run", name))
			continue
		}
		if r.AllocsOp > ceilings[name] {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op %g exceeds ceiling %g", name, r.AllocsOp, ceilings[name]))
		}
	}
	return violations
}

func run() error {
	in := flag.String("in", "bench/latest.txt", "go test -bench output to parse")
	dir := flag.String("dir", "bench", "directory holding BENCH_<date>.json trajectory points")
	threshold := flag.Float64("threshold", 0.20, "relative regression that fails the check")
	maxAllocs := flag.String("maxallocs", "", "absolute allocs/op ceilings as name=ceiling,... (hard failure)")
	maxMetric := flag.String("maxmetric", "", "absolute custom-metric ceilings as name:unit=ceiling,... (hard failure)")
	flag.Parse()

	ceilings, err := parseMaxAllocs(*maxAllocs)
	if err != nil {
		return err
	}
	mCeilings, err := parseMaxMetric(*maxMetric)
	if err != nil {
		return err
	}
	results, cpu, err := parseBench(*in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", *in)
	}
	violations := checkCeilings(results, ceilings)
	violations = append(violations, checkMetricCeilings(results, mCeilings)...)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "CEILING "+v)
		}
		return fmt.Errorf("%d ceiling violation(s)", len(violations))
	}
	cur := Record{
		Date:    time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPU:     cpu,
		MaxProc: runtime.GOMAXPROCS(0),
		Results: results,
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	out := filepath.Join(*dir, "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
	prevPath, err := previous(*dir, out)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", out, len(results))

	if prevPath == "" {
		fmt.Println("no previous trajectory point: seeded, nothing to compare")
		return nil
	}
	prev, err := load(prevPath)
	if err != nil {
		return fmt.Errorf("loading baseline %s: %w", prevPath, err)
	}
	fmt.Printf("comparing against %s:\n", prevPath)
	if regressions := compare(prev, cur, *threshold); len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION "+r)
		}
		return fmt.Errorf("%d benchmark regression(s) above %.0f%%", len(regressions), 100**threshold)
	}
	fmt.Println("no regressions above threshold")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
