package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Fig5") || !strings.Contains(s, "n_fltr,mean_service_time_s") {
		t.Errorf("unexpected output: %.200s", s)
	}
}

func TestRunEq3(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-eq3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0.58705882") {
		t.Errorf("break-even value missing from output")
	}
}

func TestRunFig4AppProp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fig", "4", "-type", "appprop", "-messages", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "application property filtering") {
		t.Error("filter type not honored")
	}
}

func TestRunAllToDirectory(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-all", "-messages", "1000", "-o", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Errorf("wrote %d files, want 12", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig12.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Q9999_over_EB") {
		t.Error("fig12.csv missing quantile column")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no selection accepted")
	}
	if err := run([]string{"-fig", "7"}, &out); err == nil {
		t.Error("diagram figure accepted")
	}
	if err := run([]string{"-fig", "4", "-type", "bogus"}, &out); err == nil {
		t.Error("bogus type accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}
