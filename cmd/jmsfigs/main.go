// Command jmsfigs regenerates the data behind every figure and table of
// the paper's evaluation from the calibrated cost model (Table I
// constants), printing CSV series to stdout or a file.
//
// Usage:
//
//	jmsfigs -fig 4            # Figure 4 (throughput, measured vs model)
//	jmsfigs -fig 12           # Figure 12 (waiting-time quantiles)
//	jmsfigs -eq3              # the Eq. 3 break-even table
//	jmsfigs -all -o out/      # everything, one CSV file per artifact
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

type artifact struct {
	name     string
	generate func() ([]bench.Series, error)
}

func artifacts(ft core.FilterType, messages int, seed int64) []artifact {
	return []artifact{
		{name: "fig4", generate: func() ([]bench.Series, error) { return bench.Fig4(ft, messages, seed) }},
		{name: "fig5", generate: bench.Fig5},
		{name: "fig6", generate: bench.Fig6},
		{name: "eq3", generate: bench.Eq3Table},
		{name: "fig8", generate: func() ([]bench.Series, error) { return bench.Fig8(nil) }},
		{name: "fig9", generate: func() ([]bench.Series, error) { return bench.Fig9(nil) }},
		{name: "fig10", generate: func() ([]bench.Series, error) { return bench.Fig10(nil) }},
		{name: "fig11", generate: func() ([]bench.Series, error) { return bench.Fig11(0.9, nil, 50, 51) }},
		{name: "fig11des", generate: func() ([]bench.Series, error) {
			return bench.Fig11DES(0.9, nil, 50, 26, 2000000, seed)
		}},
		{name: "fig12", generate: func() ([]bench.Series, error) { return bench.Fig12(nil) }},
		{name: "fig15", generate: func() ([]bench.Series, error) { return bench.Fig15(nil) }},
		{name: "psrwait", generate: func() ([]bench.Series, error) { return bench.PSRWaitTable(nil) }},
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jmsfigs", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure number to regenerate (4,5,6,8,9,10,11,12,15)")
	des := fs.Bool("des", false, "with -fig 11: add the discrete-event simulation overlay")
	eq3 := fs.Bool("eq3", false, "regenerate the Eq. 3 break-even table")
	all := fs.Bool("all", false, "regenerate every artifact")
	ftName := fs.String("type", "corrid", "filter type for Fig. 4: corrid or appprop")
	messages := fs.Int("messages", 50000, "virtual-time messages per Fig. 4 scenario")
	seed := fs.Int64("seed", 1, "simulation seed")
	outDir := fs.String("o", "", "output directory (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ft core.FilterType
	switch *ftName {
	case "corrid":
		ft = core.CorrelationIDFiltering
	case "appprop":
		ft = core.ApplicationPropertyFiltering
	default:
		return fmt.Errorf("unknown -type %q (want corrid or appprop)", *ftName)
	}

	arts := artifacts(ft, *messages, *seed)
	var selected []artifact
	switch {
	case *all:
		selected = arts
	case *eq3:
		selected = pick(arts, "eq3")
	case *fig == 11 && *des:
		selected = pick(arts, "fig11des")
	case *fig != 0:
		selected = pick(arts, fmt.Sprintf("fig%d", *fig))
	default:
		return fmt.Errorf("nothing selected: use -fig N, -eq3 or -all")
	}
	if len(selected) == 0 {
		return fmt.Errorf("no such artifact (valid: 4,5,6,8,9,10,11,12,15 and -eq3)")
	}

	for _, a := range selected {
		series, err := a.generate()
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		w := stdout
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			f, err := os.Create(filepath.Join(*outDir, a.name+".csv"))
			if err != nil {
				return err
			}
			if err := bench.WriteAll(f, series); err != nil {
				_ = f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", filepath.Join(*outDir, a.name+".csv"))
			continue
		}
		if err := bench.WriteAll(w, series); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func pick(arts []artifact, name string) []artifact {
	for _, a := range arts {
		if a.name == name {
			return []artifact{a}
		}
	}
	return nil
}
