package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunComparesAnalyticAndSimulated(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-messages", "50000", "-rho", "0.8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"analytic", "simulated", "E[W] (s)", "Q_0.9999", "cvar[B]"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunAppProp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-type", "appprop", "-messages", "20000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "appprop filtering") {
		t.Error("filter type not reflected in output")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-type", "bogus"}, &out); err == nil {
		t.Error("bogus type accepted")
	}
	if err := run([]string{"-rho", "1.5"}, &out); err == nil {
		t.Error("rho > 1 accepted")
	}
	if err := run([]string{"-binomial-p", "2"}, &out); err == nil {
		t.Error("p > 1 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}
