// Command jmssim cross-validates the paper's waiting-time analysis by
// discrete-event simulation: it runs an M/G/1-∞ queue with the broker's
// calibrated service-time model and compares the observed waiting-time
// statistics against the Pollaczek–Khinchine moments and the Gamma
// approximation (Eqs. 4–20).
//
// Usage:
//
//	jmssim -rho 0.9 -nfltr 45 -binomial-n 40 -binomial-p 0.3 -messages 500000
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/mg1"
	"repro/internal/replication"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jmssim", flag.ContinueOnError)
	ftName := fs.String("type", "corrid", "filter type: corrid or appprop")
	rho := fs.Float64("rho", 0.9, "target server utilization")
	nFltr := fs.Int("nfltr", 45, "installed filters")
	binN := fs.Int("binomial-n", 40, "binomial replication: number of matching-capable filters")
	binP := fs.Float64("binomial-p", 0.3, "binomial replication: match probability")
	messages := fs.Int("messages", 500000, "simulated messages")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var model core.CostModel
	switch *ftName {
	case "corrid":
		model = core.TableICorrelationID
	case "appprop":
		model = core.TableIApplicationProperty
	default:
		return fmt.Errorf("unknown -type %q", *ftName)
	}

	r, err := replication.NewBinomial(*binN, *binP)
	if err != nil {
		return err
	}
	meanB := model.MeanServiceTime(*nFltr, r.Mean())
	lambda := *rho / meanB

	fmt.Fprintf(stdout, "scenario: %s filtering, n_fltr=%d, R~Binomial(%d, %g) (E[R]=%.1f)\n",
		*ftName, *nFltr, *binN, *binP, r.Mean())
	fmt.Fprintf(stdout, "E[B]=%.3gs  lambda=%.1f msgs/s  rho=%.2f\n\n", meanB, lambda, *rho)

	// Analytic side.
	moments, err := mg1.MomentsFromReplication(model.ConstantPart(*nFltr), model.TTx, r)
	if err != nil {
		return err
	}
	q, err := mg1.NewQueue(lambda, moments)
	if err != nil {
		return err
	}
	dist, err := q.GammaApprox()
	if err != nil {
		return err
	}

	// Simulation side.
	res, err := sim.SimulateWaiting(sim.BrokerConfig{
		Model: model, NFltr: *nFltr, R: r, Seed: *seed,
	}, lambda, *messages, *messages/20)
	if err != nil {
		return err
	}
	simMean, err := res.Waits.Mean()
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%-28s %14s %14s\n", "metric", "analytic", "simulated")
	fmt.Fprintf(stdout, "%-28s %14.6g %14.6g\n", "E[W] (s)", q.MeanWait(), simMean)
	for _, p := range []float64{0.9, 0.99, 0.9999} {
		ana, err := dist.Quantile(p)
		if err != nil {
			return err
		}
		simQ, err := res.Waits.Quantile(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Q_%-26g %14.6g %14.6g\n", p, ana, simQ)
	}
	fmt.Fprintf(stdout, "%-28s %14.4f %14.4f\n", "rho", q.Rho(), res.ObservedRho)
	fmt.Fprintf(stdout, "%-28s %14.4f\n", "cvar[B]", moments.CVar())
	return nil
}
