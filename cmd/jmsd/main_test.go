package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/jms"
	"repro/internal/wire"
)

func TestDaemonServesClients(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-topics", "a,b"}, stop, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx, "a", wire.FilterSpec{Mode: wire.FilterNone}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, jms.NewMessage("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatal(err)
	}

	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	stop := make(chan struct{})
	if err := run([]string{"-bogus"}, stop, nil); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:-1"}, stop, nil); err == nil {
		t.Error("bad address accepted")
	}
	if err := run([]string{"-topics", "a,a"}, stop, nil); err == nil {
		t.Error("duplicate topics accepted")
	}
}

// TestDaemonFastEngine boots the daemon on the fast dispatch engine and
// round-trips a message through TCP.
func TestDaemonFastEngine(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-topics", "a", "-engine", "fast", "-shards", "2"}, stop, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx, "a", wire.FilterSpec{Mode: wire.FilterNone}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, jms.NewMessage("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestDaemonBadEngine checks the fail-fast path: a typoed -engine is
// rejected before the broker starts, with an error that enumerates the
// valid engine names.
func TestDaemonBadEngine(t *testing.T) {
	err := run([]string{"-engine", "bogus"}, nil, nil)
	if err == nil {
		t.Fatal("bogus engine accepted")
	}
	for _, want := range []string{"bogus", "valid engines", "faithful", "fast"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("engine error %q missing %q", err, want)
		}
	}
}
