package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/jms"
	"repro/internal/wire"
)

// startDaemon boots run() in the background and waits for readiness.
func startDaemon(t *testing.T, args ...string) (addrs, chan struct{}, chan error) {
	t.Helper()
	stop := make(chan struct{})
	ready := make(chan addrs, 1)
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(args, stop, ready)
	}()
	select {
	case bound := <-ready:
		return bound, stop, errCh
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

func TestDaemonServesClients(t *testing.T) {
	bound, stop, errCh := startDaemon(t, "-addr", "127.0.0.1:0", "-topics", "a,b")

	c, err := client.Dial(bound.Broker)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx, "a", wire.FilterSpec{Mode: wire.FilterNone}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, jms.NewMessage("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatal(err)
	}

	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	stop := make(chan struct{})
	if err := run([]string{"-bogus"}, stop, nil); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:-1"}, stop, nil); err == nil {
		t.Error("bad address accepted")
	}
	if err := run([]string{"-topics", "a,a"}, stop, nil); err == nil {
		t.Error("duplicate topics accepted")
	}
	if err := run([]string{"-log-level", "shouty"}, stop, nil); err == nil {
		t.Error("bad log level accepted")
	} else if !strings.Contains(err.Error(), "shouty") {
		t.Errorf("log-level error %q does not name the bad value", err)
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-http", "256.0.0.1:-1"}, stop, nil); err == nil {
		t.Error("bad telemetry address accepted")
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"INFO":    slog.LevelInfo,
		"warn":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		"Error":   slog.LevelError,
	} {
		got, err := parseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("parseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
}

// TestDaemonFastEngine boots the daemon on the fast dispatch engine and
// round-trips a message through TCP.
func TestDaemonFastEngine(t *testing.T) {
	bound, stop, errCh := startDaemon(t,
		"-addr", "127.0.0.1:0", "-topics", "a", "-engine", "fast", "-shards", "2")

	c, err := client.Dial(bound.Broker)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx, "a", wire.FilterSpec{Mode: wire.FilterNone}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(ctx, jms.NewMessage("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// TestDaemonBadEngine checks the fail-fast path: a typoed -engine is
// rejected before the broker starts, with an error that enumerates the
// valid engine names.
func TestDaemonBadEngine(t *testing.T) {
	err := run([]string{"-engine", "bogus"}, nil, nil)
	if err == nil {
		t.Fatal("bogus engine accepted")
	}
	for _, want := range []string{"bogus", "valid engines", "faithful", "fast"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("engine error %q missing %q", err, want)
		}
	}
}

// freeAddrs reserves n distinct loopback ports and releases them, so a
// mesh of daemons can be told every member's address up front.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

// TestDaemonMesh boots a two-member SSR mesh of daemons, publishes at one
// member, and checks the flood surfaces on the other and in the origin's
// jms_mesh_* telemetry.
func TestDaemonMesh(t *testing.T) {
	addrs := freeAddrs(t, 2)
	peers := strings.Join(addrs, ",")
	var stops []chan struct{}
	var errChs []chan error
	var httpAddr string
	for i, a := range addrs {
		args := []string{
			"-addr", a, "-topics", "t", "-log-level", "error",
			"-mesh", "ssr", "-peers", peers, "-mesh-self", fmt.Sprint(i),
		}
		if i == 0 {
			args = append(args, "-http", "127.0.0.1:0")
		}
		bound, stop, errCh := startDaemon(t, args...)
		stops = append(stops, stop)
		errChs = append(errChs, errCh)
		if i == 0 {
			httpAddr = bound.HTTP
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	peerClient, err := client.Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = peerClient.Close() }()
	sub, err := peerClient.Subscribe(ctx, "t", wire.FilterSpec{Mode: wire.FilterNone}, 16)
	if err != nil {
		t.Fatal(err)
	}

	origin, err := client.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = origin.Close() }()
	if err := origin.Publish(ctx, jms.NewMessage("t")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Receive(ctx); err != nil {
		t.Fatalf("flood never reached the peer member: %v", err)
	}

	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`jms_mesh_role{kind="ssr",self="0"} 1`,
		"jms_mesh_peers 1",
		"jms_mesh_forwarded_out_total 1",
		"jms_mesh_forward_errors_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	for i := range stops {
		close(stops[i])
	}
	for i, errCh := range errChs {
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("member %d shutdown error: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("member %d did not shut down", i)
		}
	}
}

// TestDaemonMeshBadFlags checks the mesh flag validation fails fast.
func TestDaemonMeshBadFlags(t *testing.T) {
	if err := run([]string{"-mesh", "bogus", "-peers", "a:1,b:1"}, nil, nil); err == nil {
		t.Error("bogus mesh kind accepted")
	}
	if err := run([]string{"-mesh", "ssr", "-peers", "a:1"}, nil, nil); err == nil {
		t.Error("single-member mesh accepted")
	}
	if err := run([]string{"-mesh", "psr", "-peers", "a:1,b:1", "-mesh-self", "7"}, nil, nil); err == nil {
		t.Error("out-of-range mesh-self accepted")
	}
}

// TestDaemonTelemetryPlane boots jmsd with -http, pushes traffic through
// the broker, and exercises all four telemetry endpoints.
func TestDaemonTelemetryPlane(t *testing.T) {
	bound, stop, errCh := startDaemon(t,
		"-addr", "127.0.0.1:0", "-http", "127.0.0.1:0",
		"-topics", "a", "-drift-interval", "50ms", "-log-level", "error")
	if bound.HTTP == "" {
		t.Fatal("no telemetry address reported")
	}

	c, err := client.Dial(bound.Broker)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sub, err := c.Subscribe(ctx, "a", wire.FilterSpec{Mode: wire.FilterNone}, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Publish(ctx, jms.NewMessage("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := sub.Receive(ctx); err != nil {
			t.Fatal(err)
		}
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + bound.HTTP + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status %d", code)
	} else {
		for _, want := range []string{
			"jms_broker_received_total 100",
			"jms_broker_topic_received_total{topic=\"a\"} 100",
			"jms_broker_wait_seconds_count{topic=\"a\"} 100",
			"jms_broker_sojourn_seconds_count{topic=\"a\"} 100",
			"jms_wire_connections_total",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
	if code, body := get("/stats"); code != http.StatusOK {
		t.Errorf("/stats status %d", code)
	} else {
		var st struct {
			Broker struct {
				Received uint64
			} `json:"broker"`
			Wire struct {
				OpenConns int `json:"open_conns"`
			} `json:"wire"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Errorf("/stats not JSON: %v\n%s", err, body)
		} else {
			if st.Broker.Received != 100 {
				t.Errorf("/stats broker received = %d, want 100", st.Broker.Received)
			}
			if st.Wire.OpenConns < 1 {
				t.Errorf("/stats wire open_conns = %d, want >= 1", st.Wire.OpenConns)
			}
		}
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (goroutine index missing)", code)
	}

	// Give the 50ms drift monitor a couple of windows, then check its
	// gauges made it to /metrics (traffic already stopped, so the gauges
	// retain the last busy window's values).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get("/metrics")
		if strings.Contains(body, "jms_model_observed_ew_seconds{topic=\"a\"}") {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("drift gauges never appeared in /metrics")
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon shutdown error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}
