// Command jmsd runs a standalone JMS-style broker over TCP.
//
// Usage:
//
//	jmsd -addr :7650 -topics presence,orders -inflight 64 \
//	     -http :7651 -log-level info
//
// Clients connect with the repro/internal/client package (or any
// implementation of the wire protocol in repro/internal/wire). With -http
// the daemon serves its telemetry plane — Prometheus /metrics, JSON
// /stats, /healthz and /debug/pprof/ — and runs the online M/G/1
// model-drift monitor next to the broker (see internal/telemetry).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sigCh
		close(stop)
	}()
	if err := run(os.Args[1:], stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "jmsd:", err)
		os.Exit(1)
	}
}

// addrs reports the daemon's bound listen addresses once it is ready.
type addrs struct {
	// Broker is the wire-protocol TCP address.
	Broker string
	// HTTP is the telemetry address; empty when -http is unset.
	HTTP string
}

// parseLogLevel maps a -log-level flag value onto a slog.Level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (valid: debug, info, warn, error)", s)
}

// run starts the daemon and blocks until stop is closed. If ready is
// non-nil, the bound addresses are sent on it once every listener is up.
func run(args []string, stop <-chan struct{}, ready chan<- addrs) error {
	fs := flag.NewFlagSet("jmsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7650", "listen address")
	httpAddr := fs.String("http", "", "telemetry listen address (/metrics, /stats, /healthz, /debug/pprof/); empty disables")
	topics := fs.String("topics", "default", "comma-separated topics to configure at start")
	inFlight := fs.Int("inflight", 64, "per-topic in-flight window (publisher push-back)")
	subBuffer := fs.Int("subbuffer", 64, "per-subscriber delivery queue length")
	engineName := fs.String("engine", "faithful", "dispatch engine: "+strings.Join(broker.EngineNames(), " or "))
	slowName := fs.String("slow-consumer", "block", "slow-consumer policy: "+strings.Join(broker.SlowConsumerPolicyNames(), ", "))
	shards := fs.Int("shards", 0, "fast engine: filter-matching workers per topic (0 = auto)")
	stages := fs.Bool("stages", false, "record per-stage pipeline timings and log the Eq. 1 components at shutdown")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn or error")
	meshKind := fs.String("mesh", "", "replication topology: psr, ssr or hash; empty runs standalone")
	peers := fs.String("peers", "", "comma-separated wire addresses of every mesh member, self included (with -mesh)")
	meshSelf := fs.Int("mesh-self", 0, "this member's index into -peers (with -mesh)")
	driftEvery := fs.Duration("drift-interval", 5*time.Second, "model-drift monitor evaluation interval (with -http)")
	traceSample := fs.Int("trace-sample", 64, "flight recorder: record full spans for 1-in-N traced messages (with -http; 0 disables /trace)")
	traceTail := fs.Int("trace-tail", 16, "flight recorder: always keep the slowest N traces per window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := broker.ParseEngine(*engineName)
	if err != nil {
		return fmt.Errorf("-engine: %w", err)
	}
	slowPolicy, err := broker.ParseSlowConsumerPolicy(*slowName)
	if err != nil {
		return fmt.Errorf("-slow-consumer: %w", err)
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return fmt.Errorf("-log-level: %w", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	// The flight recorder only pays off when the telemetry plane can
	// serve /trace, so it rides the -http flag like the drift monitor.
	var recorder *trace.Recorder
	if *httpAddr != "" && *traceSample > 0 {
		recorder = trace.New(trace.Config{SampleEvery: *traceSample, TailKeep: *traceTail})
		defer recorder.Close()
	}

	b := broker.New(broker.Options{
		InFlight:         *inFlight,
		SubscriberBuffer: *subBuffer,
		Engine:           engine,
		Shards:           *shards,
		SlowConsumer:     slowPolicy,
		StageTiming:      *stages,
		// The telemetry plane needs the per-topic waiting-time tracing.
		WaitTiming: *httpAddr != "",
		Tracer:     recorder,
	})
	for _, name := range strings.Split(*topics, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := b.ConfigureTopic(name); err != nil {
			return fmt.Errorf("configure topic %q: %w", name, err)
		}
	}

	// Replication mesh: publishes entering this member are forwarded to
	// peers per the topology (SSR floods, hash routes to the topic owner,
	// PSR never forwards) before the local broker sees them.
	var mesh *cluster.WireMesh
	if *meshKind != "" {
		kind, err := cluster.ParseTopology(*meshKind)
		if err != nil {
			_ = b.Close()
			return fmt.Errorf("-mesh: %w", err)
		}
		var addrs []string
		for _, a := range strings.Split(*peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) < 2 {
			_ = b.Close()
			return fmt.Errorf("-mesh %s needs at least 2 addresses in -peers, got %d", kind, len(addrs))
		}
		mesh, err = cluster.NewWireMesh(cluster.WireMeshConfig{
			Kind:   kind,
			Self:   *meshSelf,
			Addrs:  addrs,
			Topics: b.Topics(),
		})
		if err != nil {
			_ = b.Close()
			return fmt.Errorf("-mesh: %w", err)
		}
		defer mesh.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	serveOpts := wire.ServeOptions{Logger: logger, Tracer: recorder}
	if mesh != nil {
		serveOpts.Forwarder = mesh
	}
	srv := wire.ServeWith(b, ln, serveOpts)
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"engine", engine.String(),
		"topics", strings.Join(b.Topics(), ","))
	if mesh != nil {
		logger.Info("mesh joined",
			"kind", mesh.Kind().String(),
			"self", mesh.Self(),
			"peers", mesh.Stats().Peers)
	}

	// Telemetry plane: /metrics + /stats + /healthz + pprof, plus the
	// model-drift monitor feeding the jms_model_* gauges.
	var (
		drift    *telemetry.Monitor
		httpSrv  *http.Server
		httpDone chan struct{}
		bound    addrs
	)
	bound.Broker = ln.Addr().String()
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			_ = srv.Close()
			_ = b.Close()
			return fmt.Errorf("-http: %w", err)
		}
		drift = telemetry.NewMonitor(b, *driftEvery)
		drift.AttachTracer(recorder)
		drift.Start()
		httpSrv = &http.Server{Handler: telemetry.NewHandler(telemetry.Options{
			Broker: b,
			Wire:   srv,
			Drift:  drift,
			Trace:  recorder,
			Mesh:   mesh,
		})}
		httpDone = make(chan struct{})
		go func() {
			defer close(httpDone)
			if err := httpSrv.Serve(hln); err != nil && err != http.ErrServerClosed {
				logger.Error("telemetry server failed", "reason", err.Error())
			}
		}()
		bound.HTTP = hln.Addr().String()
		logger.Info("telemetry listening", "addr", bound.HTTP, "drift_interval", driftEvery.String())
	}
	if ready != nil {
		ready <- bound
	}

	<-stop
	// Graceful shutdown: stop accepting and cut client connections first,
	// then let the broker drain in-flight dispatches through the
	// pipeline's shutdown drain, and close the telemetry server last so a
	// final scrape can still read the end-state metrics.
	logger.Info("shutting down")
	if err := srv.Close(); err != nil {
		logger.Warn("server close failed", "reason", err.Error())
	}
	if err := b.Close(); err != nil {
		logger.Warn("broker close failed", "reason", err.Error())
	}
	if drift != nil {
		// One last evaluation over the fully drained broker, then stop.
		drift.Tick(time.Now())
		drift.Stop()
	}
	s := b.Stats()
	logger.Info("final stats",
		"received", s.Received,
		"dispatched", s.Dispatched,
		"filter_evals", s.FilterEvals,
		"dropped", s.Dropped,
		"expired", s.Expired,
		"slow_dropped", s.SlowDropped,
		"slow_disconnects", s.SlowDisconnects)
	if st := b.StageStats(); st.Enabled {
		logger.Info("stage means",
			"receive", st.Receive.Mean().String(),
			"match", st.Match.Mean().String(),
			"replicate", st.Replicate.Mean().String(),
			"transmit", st.Transmit.Mean().String())
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Warn("telemetry close failed", "reason", err.Error())
		}
		<-httpDone
	}
	return nil
}
