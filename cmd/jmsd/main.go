// Command jmsd runs a standalone JMS-style broker over TCP.
//
// Usage:
//
//	jmsd -addr :7650 -topics presence,orders -inflight 64
//
// Clients connect with the repro/internal/client package (or any
// implementation of the wire protocol in repro/internal/wire).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/broker"
	"repro/internal/wire"
)

func main() {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	stop := make(chan struct{})
	go func() {
		<-sigCh
		close(stop)
	}()
	if err := run(os.Args[1:], stop, nil); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until stop is closed. If ready is
// non-nil, the listen address is sent on it once the server is up.
func run(args []string, stop <-chan struct{}, ready chan<- string) error {
	fs := flag.NewFlagSet("jmsd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7650", "listen address")
	topics := fs.String("topics", "default", "comma-separated topics to configure at start")
	inFlight := fs.Int("inflight", 64, "per-topic in-flight window (publisher push-back)")
	subBuffer := fs.Int("subbuffer", 64, "per-subscriber delivery queue length")
	engineName := fs.String("engine", "faithful", "dispatch engine: "+strings.Join(broker.EngineNames(), " or "))
	shards := fs.Int("shards", 0, "fast engine: filter-matching workers per topic (0 = auto)")
	stages := fs.Bool("stages", false, "record per-stage pipeline timings and log the Eq. 1 components at shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := broker.ParseEngine(*engineName)
	if err != nil {
		return fmt.Errorf("-engine: %w", err)
	}

	b := broker.New(broker.Options{
		InFlight:         *inFlight,
		SubscriberBuffer: *subBuffer,
		Engine:           engine,
		Shards:           *shards,
		StageTiming:      *stages,
	})
	for _, name := range strings.Split(*topics, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if err := b.ConfigureTopic(name); err != nil {
			return fmt.Errorf("configure topic %q: %w", name, err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := wire.Serve(b, ln)
	log.Printf("jmsd: listening on %s, engine: %s, topics: %s", ln.Addr(), engine, strings.Join(b.Topics(), ", "))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	<-stop
	log.Printf("jmsd: shutting down")
	if err := srv.Close(); err != nil {
		log.Printf("jmsd: server close: %v", err)
	}
	if err := b.Close(); err != nil {
		log.Printf("jmsd: broker close: %v", err)
	}
	s := b.Stats()
	log.Printf("jmsd: received=%d dispatched=%d filterEvals=%d dropped=%d",
		s.Received, s.Dispatched, s.FilterEvals, s.Dropped)
	if st := b.StageStats(); st.Enabled {
		log.Printf("jmsd: stage means: receive=%v match=%v replicate=%v transmit=%v",
			st.Receive.Mean(), st.Match.Mean(), st.Replicate.Mean(), st.Transmit.Mean())
	}
	return nil
}
