// Presence service: the paper's motivating scenario. User devices publish
// presence updates to a JMS broker over TCP; each user subscribes with a
// selector matching their friends. The example then uses the paper's cost
// model to predict how far this deployment scales.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	jmsperf "repro"
	"repro/internal/client"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A real broker served over a loopback TCP socket.
	b := jmsperf.NewBroker(jmsperf.BrokerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := wire.Serve(b, ln)
	defer func() {
		_ = srv.Close()
		_ = b.Close()
	}()
	addr := ln.Addr().String()
	fmt.Printf("presence broker on %s\n", addr)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	admin, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer func() { _ = admin.Close() }()
	if err := admin.ConfigureTopic(ctx, "presence"); err != nil {
		return err
	}

	// Alice subscribes to her friends' presence with one selector — "each
	// subscriber has only a single filter".
	alice, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer func() { _ = alice.Close() }()
	feed, err := alice.Subscribe(ctx, "presence", wire.FilterSpec{
		Mode: wire.FilterSelector,
		Expr: "user IN ('bob', 'carol') AND online = TRUE",
	}, 64)
	if err != nil {
		return err
	}

	// Devices publish presence updates.
	device, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer func() { _ = device.Close() }()
	publish := func(user string, online bool) error {
		m := jmsperf.NewMessage("presence")
		if err := m.SetStringProperty("user", user); err != nil {
			return err
		}
		if err := m.SetBoolProperty("online", online); err != nil {
			return err
		}
		return device.Publish(ctx, m)
	}
	for _, update := range []struct {
		user   string
		online bool
	}{
		{user: "bob", online: true},     // friend, online -> delivered
		{user: "mallory", online: true}, // not a friend -> filtered
		{user: "carol", online: false},  // friend but offline -> filtered
		{user: "carol", online: true},   // friend, online -> delivered
	} {
		if err := publish(update.user, update.online); err != nil {
			return err
		}
	}

	var got []string
	for i := 0; i < 2; i++ {
		m, err := feed.Receive(ctx)
		if err != nil {
			return err
		}
		user, _ := m.StringProperty("user")
		got = append(got, user)
	}
	fmt.Printf("alice sees online friends: %s\n", strings.Join(got, ", "))

	// Capacity planning with the paper's model: how many presence updates
	// per second can one server route when every user filters with one
	// application-property selector?
	model := jmsperf.TableIApplicationProperty
	fmt.Println("\npredicted single-server capacity at rho=0.9 (application property filtering):")
	for _, users := range []int{100, 1000, 10000} {
		// Each user installs one filter; a presence update matches the
		// friends that subscribed to it. Assume 20 interested friends on
		// average: E[R] = 20.
		capacity, err := model.Capacity(0.9, users, 20)
		if err != nil {
			return err
		}
		fmt.Printf("  %6d users: %8.0f msgs/s\n", users, capacity)
	}
	return nil
}
