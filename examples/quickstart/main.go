// Quickstart: embed a broker, install a correlation-ID filter and a JMS
// selector, publish a few messages, and receive the matching subset.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	jmsperf "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	b := jmsperf.NewBroker(jmsperf.BrokerOptions{})
	defer func() { _ = b.Close() }()
	if err := b.ConfigureTopic("updates"); err != nil {
		return err
	}

	// Subscriber 1: correlation-ID range filter, like the paper's [7;13]
	// wildcard example.
	rangeFilter, err := jmsperf.NewCorrelationIDFilter("[7;13]")
	if err != nil {
		return err
	}
	inRange, err := b.Subscribe("updates", rangeFilter)
	if err != nil {
		return err
	}

	// Subscriber 2: JMS selector over the property section.
	selector, err := jmsperf.NewSelectorFilter("region = 'EU' AND severity >= 3")
	if err != nil {
		return err
	}
	alerts, err := b.Subscribe("updates", selector)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// Publish: message 9 matches the range filter; the EU/sev-4 message
	// matches the selector.
	for i := 5; i <= 9; i++ {
		m := jmsperf.NewMessage("updates")
		if err := m.SetCorrelationID(fmt.Sprint(i)); err != nil {
			return err
		}
		if err := b.Publish(ctx, m); err != nil {
			return err
		}
	}
	alert := jmsperf.NewMessage("updates")
	if err := alert.SetStringProperty("region", "EU"); err != nil {
		return err
	}
	if err := alert.SetInt32Property("severity", 4); err != nil {
		return err
	}
	if err := b.Publish(ctx, alert); err != nil {
		return err
	}

	// The range subscriber gets correlation IDs 7, 8, 9.
	for i := 0; i < 3; i++ {
		m, err := inRange.Receive(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("range subscriber got correlation ID %s\n", m.Header.CorrelationID)
	}
	// The selector subscriber gets the one EU alert.
	m, err := alerts.Receive(ctx)
	if err != nil {
		return err
	}
	region, _ := m.StringProperty("region")
	severity, _ := m.Int64Property("severity")
	fmt.Printf("selector subscriber got region=%s severity=%d\n", region, severity)

	stats := b.Stats()
	fmt.Printf("broker stats: received=%d dispatched=%d filterEvals=%d\n",
		stats.Received, stats.Dispatched, stats.FilterEvals)
	return nil
}
