// Distributed architectures: pick between publisher-side (PSR) and
// subscriber-side (SSR) server replication with the paper's crossover rule
// (Eq. 23), then actually run the chosen deployment with real brokers.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	jmsperf "repro"
	"repro/internal/broker"
	"repro/internal/distrib"
	"repro/internal/filter"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The planning scenario: n publishers, m subscribers, 10 filters per
	// subscriber, E[R]=1, rho=0.9 — Fig. 15's setting.
	scenario := jmsperf.DistribScenario{
		Model:       jmsperf.TableICorrelationID,
		N:           50,
		M:           100,
		NFltrPerSub: 10,
		MeanR:       1,
		Rho:         0.9,
	}

	psrCap, err := jmsperf.PSRCapacity(scenario)
	if err != nil {
		return err
	}
	ssrCap, err := jmsperf.SSRCapacity(scenario)
	if err != nil {
		return err
	}
	crossover, err := jmsperf.CrossoverN(scenario)
	if err != nil {
		return err
	}
	psrWins, err := jmsperf.PSROutperformsSSR(scenario)
	if err != nil {
		return err
	}

	fmt.Printf("scenario: n=%d publishers, m=%d subscribers, %d filters/subscriber, E[R]=%g\n",
		scenario.N, scenario.M, scenario.NFltrPerSub, scenario.MeanR)
	fmt.Printf("PSR system capacity: %8.0f msgs/s (Eq. 21)\n", psrCap)
	fmt.Printf("SSR system capacity: %8.0f msgs/s (Eq. 22)\n", ssrCap)
	fmt.Printf("crossover (Eq. 23):  PSR wins from n >= %d publishers\n", crossover)

	if psrWins {
		fmt.Println("\n-> deploying PSR (one broker per publisher)")
		return runPSR()
	}
	fmt.Println("\n-> deploying SSR (one broker per subscriber)")
	return runSSR()
}

// runPSR demonstrates a small publisher-side deployment: 3 publishers with
// local brokers; one subscriber registers its filter on all of them.
func runPSR() error {
	d, err := distrib.NewPSRDeployment(3, "events", broker.Options{})
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()

	subs, err := d.Subscribe(func() (filter.Filter, error) {
		return filter.NewCorrelationID("order-*")
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for p := 0; p < 3; p++ {
		m := jmsperf.NewMessage("events")
		if err := m.SetCorrelationID(fmt.Sprintf("order-%d", p)); err != nil {
			return err
		}
		if err := d.Publish(ctx, p, m); err != nil {
			return err
		}
	}
	for i, s := range subs {
		m, err := s.Receive(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("  broker %d delivered %s\n", i, m.Header.CorrelationID)
	}
	st := d.Stats()
	fmt.Printf("  PSR totals: received=%d dispatched=%d\n", st.Received, st.Dispatched)
	return nil
}

// runSSR demonstrates a small subscriber-side deployment: 3 subscribers
// with local brokers; every publish is multicast to all of them.
func runSSR() error {
	d, err := distrib.NewSSRDeployment(3, "events", broker.Options{})
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()

	subs := make([]*broker.Subscriber, 3)
	for i := range subs {
		f, err := filter.NewCorrelationID(fmt.Sprintf("shard-%d", i))
		if err != nil {
			return err
		}
		s, err := d.Subscribe(i, f)
		if err != nil {
			return err
		}
		subs[i] = s
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m := jmsperf.NewMessage("events")
	if err := m.SetCorrelationID("shard-1"); err != nil {
		return err
	}
	if err := d.Publish(ctx, m); err != nil {
		return err
	}
	got, err := subs[1].Receive(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("  subscriber 1 received %s\n", got.Header.CorrelationID)
	st := d.Stats()
	fmt.Printf("  SSR totals: received=%d (multicast) dispatched=%d\n", st.Received, st.Dispatched)
	return nil
}
