// Capacity planning: answer the questions the paper's model was built for.
// Given a planned application scenario (filters, replication grade, target
// rate), predict service time, server capacity, waiting-time quantiles and
// whether installing filters pays off — without running a single broker.
package main

import (
	"fmt"
	"log"

	jmsperf "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model := jmsperf.TableICorrelationID

	// A planned routing platform: 500 subscribers, one correlation-ID
	// filter each; every message reaches 5 subscribers on average and the
	// 500 filters match independently.
	const nFltr = 500
	rDist, err := jmsperf.NewBinomialR(nFltr, 5.0/nFltr)
	if err != nil {
		return err
	}

	meanB := model.MeanServiceTime(nFltr, rDist.Mean())
	fmt.Printf("scenario: %d correlation-ID filters, E[R]=%.1f\n", nFltr, rDist.Mean())
	fmt.Printf("mean service time E[B] = %.3g s (Eq. 1)\n", meanB)

	capacity, err := model.Capacity(0.9, nFltr, rDist.Mean())
	if err != nil {
		return err
	}
	fmt.Printf("capacity at rho=0.9     = %.0f msgs/s (Eq. 2)\n\n", capacity)

	// Waiting-time guarantees across offered loads (Eqs. 4-20).
	moments, err := jmsperf.ServiceMomentsFor(model, nFltr, rDist)
	if err != nil {
		return err
	}
	fmt.Printf("cvar[B] = %.4f\n\n", moments.CVar())
	fmt.Printf("%8s %12s %14s %14s\n", "rho", "E[W] (ms)", "Q99 (ms)", "Q99.99 (ms)")
	for _, rho := range []float64{0.5, 0.7, 0.9, 0.95} {
		q, err := jmsperf.QueueAtUtilization(rho, moments)
		if err != nil {
			return err
		}
		dist, err := q.GammaApprox()
		if err != nil {
			return err
		}
		q99, err := dist.Quantile(0.99)
		if err != nil {
			return err
		}
		q9999, err := dist.Quantile(0.9999)
		if err != nil {
			return err
		}
		fmt.Printf("%8.2f %12.3f %14.3f %14.3f\n",
			rho, q.MeanWait()*1e3, q99*1e3, q9999*1e3)
	}

	// When do filters pay off (Eq. 3)? The paper's consumer-q rule.
	fmt.Println("\nfilter benefit (Eq. 3): install filters only when the match")
	fmt.Println("probability stays below the break-even point:")
	for nq := 1; nq <= 3; nq++ {
		be := model.BreakEvenMatchProbability(nq)
		if be <= 0 {
			fmt.Printf("  %d filters/consumer: never pays off\n", nq)
			continue
		}
		fmt.Printf("  %d filter(s)/consumer: p_match < %.1f%%\n", nq, be*100)
	}

	// Finally: the largest filter population that still supports a target
	// rate of 2000 msgs/s at rho = 0.9.
	maxFilters, err := model.MaxFiltersForRate(2000, 0.9, rDist.Mean())
	if err != nil {
		return err
	}
	fmt.Printf("\nto sustain 2000 msgs/s at rho=0.9 with E[R]=%.1f: at most %d filters\n",
		rDist.Mean(), maxFilters)
	return nil
}
