// Reliable feed: durable subscriptions over TCP. A consumer registers a
// named durable subscription, goes offline, misses nothing: the broker
// buffers matching messages and replays them in order on reconnect — the
// JMS durable mode the paper contrasts with its non-durable study.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	jmsperf "repro"
	"repro/internal/client"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	b := jmsperf.NewBroker(jmsperf.BrokerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := wire.Serve(b, ln)
	defer func() {
		_ = srv.Close()
		_ = b.Close()
	}()
	addr := ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	producer, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer func() { _ = producer.Close() }()
	if err := producer.ConfigureTopic(ctx, "orders"); err != nil {
		return err
	}

	durableSpec := wire.FilterSpec{
		Mode:        wire.FilterSelector,
		Expr:        "region = 'EU'",
		DurableName: "eu-billing",
	}

	publish := func(id int, region string) error {
		m := jmsperf.NewMessage("orders")
		if err := m.SetInt32Property("id", int32(id)); err != nil {
			return err
		}
		if err := m.SetStringProperty("region", region); err != nil {
			return err
		}
		return producer.Publish(ctx, m)
	}

	// Session 1: the billing consumer registers and processes one order.
	consumer1, err := client.Dial(addr)
	if err != nil {
		return err
	}
	feed1, err := consumer1.Subscribe(ctx, "orders", durableSpec, 64)
	if err != nil {
		return err
	}
	if err := publish(1, "EU"); err != nil {
		return err
	}
	m, err := feed1.Receive(ctx)
	if err != nil {
		return err
	}
	id, _ := m.Int64Property("id")
	fmt.Printf("session 1 processed order %d\n", id)
	if err := consumer1.Close(); err != nil { // goes offline
		return err
	}

	// Offline: more orders arrive; the EU ones are buffered server-side.
	for i := 2; i <= 5; i++ {
		region := "EU"
		if i%2 == 0 {
			region = "US" // filtered out, never buffered
		}
		if err := publish(i, region); err != nil {
			return err
		}
	}
	// Wait for the broker to account for the backlog.
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if n, _, err := b.DurableBacklog("orders", "eu-billing"); err == nil && n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	n, _, err := b.DurableBacklog("orders", "eu-billing")
	if err != nil {
		return err
	}
	fmt.Printf("offline backlog: %d EU orders buffered\n", n)

	// Session 2: reconnect under the same durable name; the backlog
	// replays in order.
	consumer2, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer func() { _ = consumer2.Close() }()
	feed2, err := consumer2.Subscribe(ctx, "orders", durableSpec, 64)
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		m, err := feed2.Receive(ctx)
		if err != nil {
			return err
		}
		id, _ := m.Int64Property("id")
		region, _ := m.StringProperty("region")
		fmt.Printf("session 2 caught up on order %d (%s)\n", id, region)
	}

	// Done with the subscription for good: delete it.
	if err := feed2.Unsubscribe(ctx); err != nil {
		return err
	}
	if err := consumer2.DeleteDurable(ctx, "orders", "eu-billing"); err != nil {
		return err
	}
	fmt.Println("durable subscription deleted")
	return nil
}
