// Root benchmark harness: one benchmark per table/figure of the paper
// (T1, F4, F5, F6, E3, F8–F12, F15) plus the ablation benches called out in
// DESIGN.md. Each benchmark regenerates its experiment's data series and
// reports a headline scalar via b.ReportMetric so regressions in the
// reproduced numbers are visible in benchmark output. The full rows/series
// are printed by cmd/jmsfigs and cmd/jmsbench.
package jmsperf_test

import (
	"context"
	"strconv"
	"testing"
	"time"

	jmsperf "repro"
	"repro/internal/bench"
	"repro/internal/broker"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/jms"
	"repro/internal/mg1"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/topic"
)

// BenchmarkTable1Fit regenerates Table I: a native measurement sweep over
// this repository's broker followed by the least-squares fit of
// (t_rcv, t_fltr, t_tx). Reported metric: the fit's R^2 (the linear model
// must describe a filter-scan broker almost perfectly).
func BenchmarkTable1Fit(b *testing.B) {
	cfg := bench.NativeConfig{
		FilterType: core.CorrelationIDFiltering,
		Publishers: 3,
		Warmup:     20 * time.Millisecond,
		Measure:    100 * time.Millisecond,
	}
	grid := bench.StudyGrid{NValues: []int{0, 40, 160}, RValues: []int{1, 8}}
	var r2 float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunNativeStudy(cfg, grid)
		if err != nil {
			b.Fatal(err)
		}
		r2 = res.Fit.R2
	}
	b.ReportMetric(r2, "fit-R2")
}

// BenchmarkFig4Throughput regenerates Figure 4 (overall throughput vs
// n_fltr for R in {1..40}, measured by the calibrated virtual-time broker
// vs Eq. 1). Reported metric: measured overall throughput at n_fltr=165,
// R=5 in msgs/s.
func BenchmarkFig4Throughput(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Fig4(core.CorrelationIDFiltering, 20000, 1)
		if err != nil {
			b.Fatal(err)
		}
		// Series for R=5 is index 2; last row is n=160 => n_fltr=165.
		rows := series[2].Rows
		ref = rows[len(rows)-1][1]
	}
	b.ReportMetric(ref, "msgs/s@n165,R5")
}

// BenchmarkFig5ServiceTime regenerates Figure 5 (E[B] vs n_fltr).
// Reported metric: E[B] in microseconds at n_fltr=1000, E[R]=10, corrID.
func BenchmarkFig5ServiceTime(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.Name != "Fig5 correlation ID filtering E[R]=10" {
				continue
			}
			for _, row := range s.Rows {
				if row[0] == 1000 {
					ref = row[1] * 1e6
				}
			}
		}
	}
	b.ReportMetric(ref, "us@n1000,R10")
}

// BenchmarkFig6Capacity regenerates Figure 6 (capacity at rho=0.9).
// Reported metric: capacity in msgs/s at n_fltr=100, E[R]=1.
func BenchmarkFig6Capacity(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range series[0].Rows {
			if row[0] == 100 {
				ref = row[1]
			}
		}
	}
	b.ReportMetric(ref, "msgs/s@n100")
}

// BenchmarkEq3FilterBenefit regenerates the Section IV-A.2 break-even
// table. Reported metric: the single-filter correlation-ID break-even
// match probability (paper: 0.587).
func BenchmarkEq3FilterBenefit(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Eq3Table()
		if err != nil {
			b.Fatal(err)
		}
		ref = series[0].Rows[0][1]
	}
	b.ReportMetric(ref, "p-break-even")
}

// BenchmarkFig8CvarBernoulli regenerates Figure 8. Reported metric: the
// maximum cvar[B] across the sweep (paper: at most ~0.65).
func BenchmarkFig8CvarBernoulli(b *testing.B) {
	var maxCvar float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Fig8(nil)
		if err != nil {
			b.Fatal(err)
		}
		maxCvar = 0
		for _, s := range series {
			for _, row := range s.Rows {
				if row[1] > maxCvar {
					maxCvar = row[1]
				}
			}
		}
	}
	b.ReportMetric(maxCvar, "max-cvar")
}

// BenchmarkFig9CvarBinomial regenerates Figure 9. Reported metric: cvar[B]
// for correlation-ID filtering at n_fltr ~ 63, p=0.5 (the paper quotes
// ~0.064 in this region).
func BenchmarkFig9CvarBinomial(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Fig9([]float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range series[0].Rows {
			if row[0] >= 63 && ref == 0 {
				ref = row[1]
			}
		}
	}
	b.ReportMetric(ref, "cvar@n63")
}

// BenchmarkFig10MeanWait regenerates Figure 10. Reported metric:
// E[W]/E[B] at rho=0.9, cvar=0 (theory: 4.5).
func BenchmarkFig10MeanWait(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		w, err := mg1.MeanWaitNormalized(0.9, 0)
		if err != nil {
			b.Fatal(err)
		}
		ref = w
		if _, err := jmsperf.Fig10(nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ref, "EW/EB@rho.9")
}

// BenchmarkFig11WaitCCDF regenerates Figure 11. Reported metric:
// P(W > 20*E[B]) at rho=0.9, cvar=0.4.
func BenchmarkFig11WaitCCDF(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Fig11(0.9, nil, 50, 51)
		if err != nil {
			b.Fatal(err)
		}
		tail := series[len(series)-1] // cvar = 0.4
		for _, row := range tail.Rows {
			if row[0] == 20 {
				ref = row[1]
			}
		}
	}
	b.ReportMetric(ref, "P(W>20EB)")
}

// BenchmarkFig12WaitQuantiles regenerates Figure 12. Reported metric: the
// 99.99% waiting-time quantile in units of E[B] at rho=0.9, cvar=0.4
// (paper: ~50).
func BenchmarkFig12WaitQuantiles(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Fig12(nil)
		if err != nil {
			b.Fatal(err)
		}
		s := series[len(series)-1] // cvar = 0.4
		for _, row := range s.Rows {
			if row[0] > 0.89 && row[0] < 0.91 {
				ref = row[2]
			}
		}
	}
	b.ReportMetric(ref, "Q9999/EB@rho.9")
}

// BenchmarkFig15PSRvsSSR regenerates Figure 15. Reported metric: the
// crossover n for m=100 subscribers (smallest publisher count at which PSR
// outperforms SSR).
func BenchmarkFig15PSRvsSSR(b *testing.B) {
	var ref float64
	for i := 0; i < b.N; i++ {
		series, err := jmsperf.Fig15(nil)
		if err != nil {
			b.Fatal(err)
		}
		cross := series[len(series)-1]
		for _, row := range cross.Rows {
			if row[0] == 100 {
				ref = row[1]
			}
		}
	}
	b.ReportMetric(ref, "crossover-n@m100")
}

// --- Ablation benches (DESIGN.md §5) ---------------------------------------

// BenchmarkAblationFilterIndex compares the paper's linear filter scan
// (FioranoMQ's behaviour, §III-B) against the fast engine's FilterIndex
// over the same subscription population: 160 exact correlation-ID filters
// collapse into one hash probe. Run with -bench 'AblationFilterIndex' and
// compare the two sub-benchmarks.
func BenchmarkAblationFilterIndex(b *testing.B) {
	const nFilters = 160
	reg := topic.NewRegistry()
	tp, err := reg.Configure("t")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nFilters; i++ {
		f, err := filter.NewCorrelationID("#" + strconv.Itoa(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reg.Subscribe("t", f, nil); err != nil {
			b.Fatal(err)
		}
	}
	msg := jms.NewMessage("t")
	if err := msg.SetCorrelationID("#0"); err != nil {
		b.Fatal(err)
	}

	b.Run("linear-scan", func(b *testing.B) {
		subs, _ := tp.Snapshot()
		b.ReportAllocs()
		matches := 0
		for i := 0; i < b.N; i++ {
			matches = 0
			for _, s := range subs {
				if s.Filter == nil || s.Filter.Matches(msg) {
					matches++
				}
			}
		}
		if matches != 1 {
			b.Fatalf("matches = %d, want 1", matches)
		}
	})
	b.Run("filter-index", func(b *testing.B) {
		idx, _ := tp.Index()
		scratch := make([]*topic.Subscription, 0, 8)
		b.ReportAllocs()
		matches := 0
		for i := 0; i < b.N; i++ {
			var out []*topic.Subscription
			out, _ = idx.Match(msg, scratch[:0])
			matches = len(out)
		}
		if matches != 1 {
			b.Fatalf("matches = %d, want 1", matches)
		}
	})
}

// BenchmarkAblationDispatchSharding compares the faithful single dispatch
// goroutine against the fast engine's sharded matchers on one topic. The
// subscriber population is glob filters, which the FilterIndex cannot
// collapse — both engines pay the per-filter evaluation, so the delta
// isolates the sharded pipeline itself.
func BenchmarkAblationDispatchSharding(b *testing.B) {
	run := func(b *testing.B, engine broker.Engine) {
		br := broker.New(broker.Options{
			InFlight: 1024, SubscriberBuffer: 1 << 16,
			Engine: engine, Shards: 4,
		})
		defer func() { _ = br.Close() }()
		if err := br.ConfigureTopic("t"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 512; i++ {
			f, err := filter.NewCorrelationID("#never-" + strconv.Itoa(i) + "-*")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := br.Subscribe("t", f); err != nil {
				b.Fatal(err)
			}
		}
		sub, err := br.Subscribe("t", nil)
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for range sub.Chan() {
			}
		}()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := br.Publish(ctx, jms.NewMessage("t")); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("faithful", func(b *testing.B) { run(b, broker.EngineFaithful) })
	b.Run("fast-4shards", func(b *testing.B) { run(b, broker.EngineFast) })
}

// BenchmarkAblationReplicationAllocs measures allocations per published
// message at replication grade R=8 on both engines. The faithful path deep-
// clones the message R-1 times (property map + body copy each); the fast
// path hands out copy-on-write Shared views, so its allocs/op must come in
// below the faithful engine's.
func BenchmarkAblationReplicationAllocs(b *testing.B) {
	const replicas = 8
	body := make([]byte, 256)
	run := func(b *testing.B, engine broker.Engine) {
		br := broker.New(broker.Options{
			InFlight: 1024, SubscriberBuffer: 1 << 16,
			Engine: engine, Shards: 4,
		})
		defer func() { _ = br.Close() }()
		if err := br.ConfigureTopic("t"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < replicas; i++ {
			sub, err := br.Subscribe("t", nil)
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for range sub.Chan() {
				}
			}()
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := jms.NewMessage("t")
			m.SetBody(body)
			if err := m.SetStringProperty("region", "eu"); err != nil {
				b.Fatal(err)
			}
			if err := br.Publish(ctx, m); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("faithful", func(b *testing.B) { run(b, broker.EngineFaithful) })
	b.Run("fast-cow", func(b *testing.B) { run(b, broker.EngineFast) })
}

// BenchmarkAblationGammaVsDES compares the cost of obtaining the 99.99%
// waiting-time quantile from the closed-form Gamma approximation against
// estimating it from a discrete-event simulation.
func BenchmarkAblationGammaVsDES(b *testing.B) {
	model := core.TableICorrelationID
	r, err := replication.NewBinomial(40, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	const nFltr = 45
	meanB := model.MeanServiceTime(nFltr, r.Mean())
	lambda := 0.9 / meanB

	b.Run("gamma-approx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := mg1.MomentsFromReplication(model.ConstantPart(nFltr), model.TTx, r)
			if err != nil {
				b.Fatal(err)
			}
			q, err := mg1.NewQueue(lambda, m)
			if err != nil {
				b.Fatal(err)
			}
			dist, err := q.GammaApprox()
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dist.Quantile(0.9999); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("des-estimate", func(b *testing.B) {
		cfg := sim.BrokerConfig{Model: model, NFltr: nFltr, R: r, Seed: 1}
		for i := 0; i < b.N; i++ {
			res, err := sim.SimulateWaiting(cfg, lambda, 100000, 5000)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := res.Waits.Quantile(0.9999); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPushbackWindow measures publish throughput under
// different in-flight window sizes (the push-back knob).
func BenchmarkAblationPushbackWindow(b *testing.B) {
	for _, window := range []int{1, 64, 1024} {
		b.Run("inflight-"+strconv.Itoa(window), func(b *testing.B) {
			br := broker.New(broker.Options{InFlight: window, SubscriberBuffer: 1 << 16})
			defer func() { _ = br.Close() }()
			if err := br.ConfigureTopic("t"); err != nil {
				b.Fatal(err)
			}
			sub, err := br.Subscribe("t", nil)
			if err != nil {
				b.Fatal(err)
			}
			go func() {
				for range sub.Chan() {
				}
			}()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := br.Publish(ctx, jms.NewMessage("t")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationClusterMesh compares publish cost on a single broker
// against a 3-member full mesh carrying the same filter population — the
// clustering extension's trade-off (extra receives vs. sharded scans).
func BenchmarkAblationClusterMesh(b *testing.B) {
	const totalFilters = 300
	drain := func(s *broker.Subscriber) {
		go func() {
			for range s.Chan() {
			}
		}()
	}
	newFilter := func(b *testing.B) filter.Filter {
		f, err := filter.NewCorrelationID("#never")
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	b.Run("single", func(b *testing.B) {
		br := broker.New(broker.Options{InFlight: 1024, SubscriberBuffer: 1 << 12})
		defer func() { _ = br.Close() }()
		if err := br.ConfigureTopic("t"); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < totalFilters; i++ {
			s, err := br.Subscribe("t", newFilter(b))
			if err != nil {
				b.Fatal(err)
			}
			drain(s)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := br.Publish(ctx, jms.NewMessage("t")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mesh-3", func(b *testing.B) {
		c, err := cluster.NewMesh(3, "t", broker.Options{InFlight: 1024, SubscriberBuffer: 1 << 12})
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		for member := 0; member < 3; member++ {
			for i := 0; i < totalFilters/3; i++ {
				s, err := c.Subscribe(member, newFilter(b))
				if err != nil {
					b.Fatal(err)
				}
				drain(s)
			}
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Publish(ctx, 0, jms.NewMessage("t")); err != nil {
				b.Fatal(err)
			}
		}
	})
}
