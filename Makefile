GO ?= go

.PHONY: all build test race bench verify

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the data-race detector over the packages with real concurrency:
# the broker's dispatch engines (sharded fast path included), the lock-free
# topic snapshots, the copy-on-write message views, and the wire layer's
# pooled buffers.
race:
	$(GO) test -race ./internal/jms/... ./internal/topic/... ./internal/broker/... ./internal/wire/... ./internal/client/...

bench:
	$(GO) test -run xxx -bench . -benchtime 300ms .

# verify is the tier-1 gate plus the race pass.
verify: build test race
