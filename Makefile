GO ?= go

.PHONY: all build test race bench fuzz verify

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the data-race detector over the packages with real concurrency:
# the broker's dispatch engines (sharded fast path included), the lock-free
# topic snapshots, the copy-on-write message views, the wire layer's pooled
# buffers, the reliability stack (fault injection, reconnecting clients,
# self-healing cluster bridges, conformance harness), and the telemetry
# plane scraped while the broker dispatches.
race:
	$(GO) test -race ./internal/jms/... ./internal/topic/... ./internal/broker/... ./internal/wire/... ./internal/client/... ./internal/faultnet/... ./internal/cluster/... ./internal/conformance/... ./internal/metrics/... ./internal/telemetry/... ./cmd/jmsd/...

bench:
	$(GO) test -run xxx -bench . -benchtime 300ms .

# fuzz smokes the two parsing surfaces fed by the network: the frame codec
# and the JMS selector grammar. Seed corpora live under testdata/fuzz.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/selector/

# verify is the tier-1 gate plus the race pass.
verify: build test race
