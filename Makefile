GO ?= go

.PHONY: all build test race bench bench-all fuzz stress stress-smoke verify

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the data-race detector over the packages with real concurrency:
# the broker's dispatch engines (sharded fast path included), the lock-free
# topic snapshots, the copy-on-write message views, the wire layer's pooled
# buffers, the reliability stack (fault injection, reconnecting clients,
# self-healing cluster bridges, conformance harness), and the telemetry
# plane scraped while the broker dispatches.
race:
	$(GO) test -race ./internal/jms/... ./internal/topic/... ./internal/broker/... ./internal/wire/... ./internal/client/... ./internal/faultnet/... ./internal/cluster/... ./internal/conformance/... ./internal/metrics/... ./internal/telemetry/... ./internal/trace/... ./internal/stress/... ./cmd/jmsd/...

# bench runs the regression benchmark set (publish, dispatch, batch
# codec, end-to-end wire loop, subscription store), records a dated
# trajectory point under bench/BENCH_<date>.json, and fails on a >20%
# regression against the previous point. The two commands are separate so
# a go test failure is not swallowed by a pipe. -maxallocs pins the
# zero-allocation wire-path rows to their designed budgets (batch decode:
# message + body slab; batch encode and delivery: pooled,
# allocation-free); -maxmetric pins the subscription store's marginal
# memory footprint at the 10^5 population and the flight recorder's
# end-to-end throughput cost at its 5% acceptance ceiling. All are hard
# ceilings.
bench:
	@mkdir -p bench
	$(GO) test -run xxx -bench BenchmarkRegression -benchtime 1s -benchmem . | tee bench/latest.txt
	$(GO) run ./cmd/benchjson -in bench/latest.txt -dir bench \
		-maxallocs 'RegressionBatchDecode=2,RegressionBatchEncode=2,RegressionDeliver=0' \
		-maxmetric 'RegressionSubscriptionStore:bytes/sub=1024,RegressionEndToEndTraced:overhead_pct=5'

# bench-all runs every benchmark (figure regenerations + ablations) once.
bench-all:
	$(GO) test -run xxx -bench . -benchtime 300ms .

# fuzz smokes the parsing surfaces fed by the network: the frame codec,
# the batch frame splitter, the lazy message-view decoder (held
# differentially to DecodeMessage), the mesh FORWARD frame decoder, and
# the JMS selector grammar. Seed corpora live under testdata/fuzz.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeFrame -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeBatch -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeMessageView -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzDecodeForward -fuzztime=10s ./internal/wire/
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=10s ./internal/selector/
	$(GO) test -run='^$$' -fuzz=FuzzInternMatch -fuzztime=10s ./internal/topic/

# stress runs the full churn/soak wall: 10^5 churn storms plus the 10^6
# subscription soak (JMS_STRESS=1), with memory and rebuild-latency
# ceilings enforced. Needs ~1 GiB of heap; takes tens of seconds.
stress:
	JMS_STRESS=1 $(GO) test -v -timeout 20m ./internal/stress/

# stress-smoke is the CI-budget slice of the wall: short populations, no
# 10^6 soak, same ceilings.
stress-smoke:
	$(GO) test -short ./internal/stress/

# verify is the tier-1 gate plus the race pass.
verify: build test race
